//! Property test: the overlapped execution path (reactor-backed object
//! store, `WorkerConfig::overlap`, executor-issued index prefetches) is
//! bit-identical to the blocking path across cold, mixed, and warm cache
//! residency. Overlap only changes *when* simulated latencies are paid —
//! never which bytes come back — so every query must merge the exact same
//! rows either way (DESIGN.md §11).

use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_cluster::worker::WorkerConfig;
use bh_common::ids::IdGenerator;
use bh_common::{LatencyModel, MetricsRegistry, Reactor, SharedClock, VirtualClock, VwId};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_sql::ast::SelectStmt;
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    table: Arc<TableStore>,
    clock: SharedClock,
    metrics: MetricsRegistry,
    engine: QueryEngine,
}

/// 480 rows in 4 clusters across 8 segments, persisted through a
/// reactor-backed in-memory store with nonzero transfer latency so deferred
/// gets and executor prefetches actually engage the completion queue.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let clock: SharedClock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let reactor = Arc::new(Reactor::new(clock.clone()));
        let store = Arc::new(
            InMemoryObjectStore::new(
                clock.clone(),
                LatencyModel::new(Duration::from_micros(50), Duration::from_nanos(2)),
                metrics.clone(),
                "remote",
            )
            .with_reactor(reactor),
        );
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, Metric::L2);
        let table = TableStore::new(
            schema,
            store,
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: 60, ..Default::default() },
            Arc::new(IdGenerator::new()),
            metrics.clone(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..480)
            .map(|i| {
                let c = (i % 4) as f32 * 8.0 + (i as f32) * 1e-4;
                vec![
                    Value::UInt64(i as u64),
                    Value::Vector(vec![c, c + 0.1, c + 0.2, c - 0.1]),
                ]
            })
            .collect();
        table.insert_rows(rows).unwrap();
        Fixture {
            table: Arc::new(table),
            clock,
            engine: QueryEngine::new(metrics.clone()),
            metrics,
        }
    })
}

/// A fresh two-worker VW over the shared table. `overlap` routes worker RPC
/// charges through a per-worker reactor; everything else is identical so the
/// only difference between the two warehouses under test is the overlap path.
fn make_vw(fix: &Fixture, overlap: bool) -> VirtualWarehouse {
    let vw = VirtualWarehouse::new(
        if overlap { VwId(1) } else { VwId(0) },
        if overlap { "ovl" } else { "blk" },
        VwConfig {
            rpc: LatencyModel::fixed(Duration::from_micros(100)),
            worker: WorkerConfig { overlap, ..Default::default() },
            ..Default::default()
        },
        fix.table.remote_store().clone(),
        fix.table.registry().clone(),
        fix.clock.clone(),
        fix.metrics.clone(),
        Arc::new(IdGenerator::starting_at(1000)),
    );
    vw.scale_up(&[]);
    vw.scale_up(&[]);
    vw
}

fn parse(sql: &str) -> SelectStmt {
    match bh_sql::parse_statement(sql).unwrap() {
        bh_sql::Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

fn stmt_strategy() -> impl Strategy<Value = String> {
    (0u32..4, 1usize..=20, any::<bool>()).prop_map(|(cluster, k, filtered)| {
        let c = cluster as f32 * 8.0;
        let w = if filtered { "WHERE id < 240 " } else { "" };
        format!(
            "SELECT id, dist FROM t {w}ORDER BY \
             L2Distance(emb, [{c}.0, {:.1}, {:.1}, {:.1}]) AS dist LIMIT {k}",
            c + 0.1,
            c + 0.2,
            c - 0.1,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn overlapped_batch_is_bit_identical_to_blocking(
        sqls in prop::collection::vec(stmt_strategy(), 1..=6),
        residency in 0usize..3,
    ) {
        let fix = fixture();
        let stmts: Vec<SelectStmt> = sqls.iter().map(|s| parse(s)).collect();
        let metas = fix.table.segments();
        let vw_blocking = make_vw(fix, false);
        let vw_overlap = make_vw(fix, true);
        // Same starting residency on both warehouses: none, half, or all of
        // the segments preloaded. Cold queries warm caches synchronously, so
        // identical statements evolve both warehouses identically.
        let preload = &metas[..metas.len() * residency / 2];
        vw_blocking.preload(preload).unwrap();
        vw_overlap.preload(preload).unwrap();

        let opts = QueryOptions::default();
        // Two rounds: the first runs at the chosen residency, the second on
        // whatever mix the first round's warming produced.
        for round in 0..2 {
            let blocking = fix
                .engine
                .execute_select_batch(&fix.table, &vw_blocking, &opts, &stmts)
                .unwrap();
            let overlapped = fix
                .engine
                .execute_select_batch(&fix.table, &vw_overlap, &opts, &stmts)
                .unwrap();
            prop_assert_eq!(blocking.len(), overlapped.len());
            for (i, (b, o)) in blocking.iter().zip(&overlapped).enumerate() {
                prop_assert_eq!(
                    &b.rows,
                    &o.rows,
                    "statement {} diverged (residency={}, round={}): {}",
                    i,
                    residency,
                    round,
                    sqls[i]
                );
            }
        }
    }
}
