//! Property tests for Plan D (filter-aware HNSW traversal) at the query
//! layer: every row a forced `FilteredTraversal` query returns must satisfy
//! the structured predicate, and recall against the brute-force-filtered
//! ground truth (forced Plan A on the same statement) must meet a floor
//! across the selectivity range — from ~2% pass fraction up to ~95%.
//!
//! The fixture mirrors `batch_equivalence.rs`: clustered 4-dim embeddings
//! with a per-row jitter so all distances are distinct, split across many
//! segments, warmed up front so every run sees the same residency state.

use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_common::ids::IdGenerator;
use bh_common::{MetricsRegistry, VirtualClock};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_query::result::ResultSet;
use bh_query::Strategy as PlanStrategy;
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric, SearchParams};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    table: Arc<TableStore>,
    vw: VirtualWarehouse,
    engine: QueryEngine,
}

/// 1200 rows in 5 well-separated clusters across 12 segments, caches warmed
/// by one full-table query.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, Metric::L2);
        let metrics = MetricsRegistry::new();
        let table = TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: 100, ..Default::default() },
            Arc::new(IdGenerator::new()),
            metrics.clone(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..1200)
            .map(|i| {
                let c = (i % 5) as f32 * 6.0 + (i as f32) * 1e-4;
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 2)),
                    Value::Vector(vec![c, c + 0.1, c + 0.2, c - 0.1]),
                ]
            })
            .collect();
        table.insert_rows(rows).unwrap();
        let vw = VirtualWarehouse::new(
            bh_common::VwId(0),
            "q",
            VwConfig::default(),
            table.remote_store().clone(),
            table.registry().clone(),
            VirtualClock::shared(),
            metrics.clone(),
            Arc::new(IdGenerator::starting_at(1000)),
        );
        vw.scale_up(&[]);
        vw.scale_up(&[]);
        let engine = QueryEngine::new(metrics);
        let fix = Fixture { table: Arc::new(table), vw, engine };
        run_sql(
            &fix,
            &QueryOptions::default(),
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 1200",
        );
        fix
    })
}

fn run_sql(fix: &Fixture, opts: &QueryOptions, sql: &str) -> ResultSet {
    let stmt = match bh_sql::parse_statement(sql).unwrap() {
        bh_sql::Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    };
    fix.engine.execute_select(&fix.table, &fix.vw, opts, &stmt).unwrap()
}

fn ids(rs: &ResultSet) -> Vec<u64> {
    rs.rows
        .iter()
        .map(|r| match &r[0] {
            Value::UInt64(id) => *id,
            other => panic!("expected id, got {other:?}"),
        })
        .collect()
}

/// The swept filters: SQL text, true pass fraction, and a row-level oracle.
/// Spans the selectivity range the cost model routes to Plan D and beyond it
/// into the regions where A (tiny s) or C (large s) would normally win — a
/// forced Plan D must stay correct everywhere, not just where it is chosen.
const FILTERS: &[(&str, f32, fn(u64) -> bool)] = &[
    ("WHERE id < 24 ", 0.02, |id| id < 24),
    ("WHERE id < 120 ", 0.1, |id| id < 120),
    ("WHERE label = 'l1' AND id < 600 ", 0.25, |id| id % 2 == 1 && id < 600),
    ("WHERE label = 'l0' ", 0.5, |id| id % 2 == 0),
    ("WHERE id >= 60 ", 0.95, |id| id >= 60),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// For a random cluster-centred top-k over each filter: (1) every Plan D
    /// row passes the predicate, with and without a selectivity hint; (2) with
    /// an accurate hint, recall against the brute-force-filtered ground truth
    /// is at least 0.9.
    #[test]
    fn plan_d_rows_pass_predicate_and_recall_meets_floor(
        cluster in 0u32..5,
        k in 5usize..=25,
        filter in 0usize..FILTERS.len(),
    ) {
        let fix = fixture();
        let (where_clause, s, passes) = FILTERS[filter];
        let c = cluster as f32 * 6.0;
        let sql = format!(
            "SELECT id, dist FROM t {where_clause}ORDER BY \
             L2Distance(emb, [{c}.0, {:.1}, {:.1}, {:.1}]) AS dist LIMIT {k}",
            c + 0.1,
            c + 0.2,
            c - 0.1,
        );

        let oracle_opts = QueryOptions {
            forced_strategy: Some(PlanStrategy::BruteForce),
            ..Default::default()
        };
        let oracle: Vec<u64> = ids(&run_sql(fix, &oracle_opts, &sql));
        prop_assert!(!oracle.is_empty());

        for hinted in [true, false] {
            let mut search = SearchParams::default().with_ef(128);
            if hinted {
                search = search.with_selectivity(s);
            }
            let opts = QueryOptions {
                forced_strategy: Some(PlanStrategy::FilteredTraversal),
                search,
                ..Default::default()
            };
            let got = ids(&run_sql(fix, &opts, &sql));
            for id in &got {
                prop_assert!(
                    passes(*id),
                    "Plan D returned id {} violating {} (hinted={})",
                    id,
                    where_clause.trim(),
                    hinted
                );
            }
            if hinted {
                let hits = got.iter().filter(|id| oracle.contains(id)).count();
                let recall = hits as f64 / oracle.len() as f64;
                prop_assert!(
                    recall >= 0.9,
                    "Plan D recall {:.3} < 0.9 at s={} ({})",
                    recall,
                    s,
                    sql
                );
            }
        }
    }
}
