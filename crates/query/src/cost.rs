//! The accuracy-aware cost model (§IV-A, Table II, Eqs. 1–3).
//!
//! Four physical plans compete for a filtered vector search:
//!
//! * **Plan A — brute force**: structured scan, then exact distances on the
//!   `s·n` qualifying rows.           `cost_A = T0 + s·n·c_d`
//! * **Plan B — pre-filter**: structured scan to a bitset, then an ANN
//!   bitmap scan visiting `γ·n/s` records (amplified by selectivity), a
//!   bitmap test per record and ADC on survivors, plus a refine pass.
//!   `cost_B = T0 + (γ·n/s)·(c_p + s·c_c) + σ·k·c_d`
//! * **Plan C — post-filter**: ANN first, iterating until `σ·k` rows pass
//!   the filter.   `cost_C = (β·n/s)·c_scan + (σ·k/s)·c_f + σ·k·c_d`
//! * **Plan D — filtered traversal** (graph indexes only): the same bitset
//!   as Plan B, but the graph walks it natively — failing nodes steer
//!   navigation while only passing nodes enter the beam, so the visit
//!   amplification is `1/√s` (bounded multi-hop detours) instead of the
//!   bitmap scan's `1/s` re-draw amplification.
//!   `cost_D = T0 + (β·n/√s)·(c_p + c_scan) + σ·k·c_d`
//!
//! Two engine-aware refinements over the paper's formulas (which assume an
//! IVF-style code scan and a negligible post-filter):
//!
//! * `c_scan` is the per-visited-record cost of the ANN scan: the cheap ADC
//!   constant `c_c` only when the index is *quantized*; graph indexes
//!   (HNSW) compute full-precision distances, so `c_scan = c_d`. Likewise a
//!   graph traversal pays the distance for every visited node even when the
//!   bitmap rejects it, so Plan B's per-visit term drops the `s·` discount
//!   for graph indexes.
//! * Plan C evaluates the predicate row-by-row on every pulled candidate
//!   (`σ·k/s` rows to surface `σ·k` passing ones); `c_f` prices that
//!   per-row evaluation, which is far from free in a columnar engine.
//!
//! Constants are per-operation relative costs; [`CostParams::calibrate`]
//! fits the kernel ratios with micro-probes at startup. The decision
//! structure matches both the paper's headline cases and this engine's
//! measured behaviour: brute force at tiny pass fractions with large `k`,
//! post-filter near `s = 1`, pre-filter in between for large-`k` filtered
//! searches.

use serde::{Deserialize, Serialize};

/// Physical execution strategy for a (filtered) vector search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Plan A: scalar filter, then exact distances.
    BruteForce,
    /// Plan B: scalar bitset, then ANN bitmap scan.
    PreFilter,
    /// Plan C: ANN iterator, then scalar filter.
    PostFilter,
    /// Plan D: predicate-aware graph traversal (graph indexes only).
    FilteredTraversal,
}

impl Strategy {
    /// Human-readable plan label.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute-force (Plan A)",
            Strategy::PreFilter => "pre-filter (Plan B)",
            Strategy::PostFilter => "post-filter (Plan C)",
            Strategy::FilteredTraversal => "filtered-traversal (Plan D)",
        }
    }

    /// Stable lowercase slug used for metric names (`query.plan.<slug>`)
    /// and the `system.query_log` strategy column.
    pub fn slug(&self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute_force",
            Strategy::PreFilter => "pre_filter",
            Strategy::PostFilter => "post_filter",
            Strategy::FilteredTraversal => "filtered_traversal",
        }
    }
}

/// Cost-model constants (Table II). Units are arbitrary but consistent —
/// only ratios matter for plan choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Structured scan cost per row (builds `T0 = t0_row · n`).
    pub t0_row: f64,
    /// Bitmap test per visited record (`c_p`).
    pub c_p: f64,
    /// Fetch a vector + exact pairwise distance (`c_d`).
    pub c_d: f64,
    /// Fetch a code + ADC distance (`c_c`) — applies to quantized indexes.
    pub c_c: f64,
    /// Row-wise predicate evaluation on a pulled candidate (cell fetch +
    /// per-row filter), the post-filter iterator's per-row cost.
    pub c_f: f64,
    /// Refine amplification (`σ > 1`).
    pub sigma: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Ratios measured on the bundled kernels: ADC ≈ 1/4 of an exact
        // mid-dimension float distance; a bitmap test ~50x cheaper than ADC;
        // vectorized predicate evaluation ≈ half a distance per row; a
        // row-wise post-filter evaluation (scattered cell fetch + per-row
        // predicate) ≈ tens of distances.
        Self { t0_row: 0.5, c_p: 0.005, c_d: 1.0, c_c: 0.25, c_f: 40.0, sigma: 2.0 }
    }
}

/// Workload facts the optimizer feeds the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostInputs {
    /// Total candidate rows in the scheduled segments (`n`).
    pub n: usize,
    /// Estimated fraction of rows passing the structured predicate (`s`).
    pub s: f64,
    /// Fraction of rows a plain ANN scan visits (`β`, from ef/nprobe).
    pub beta: f64,
    /// Fraction visited by the ANN *bitmap* scan (`γ`); usually ≥ β because
    /// filtered traversal widens the beam.
    pub gamma: f64,
    /// Requested result count (`k`).
    pub k: usize,
    /// Graph-traversal index (HNSW family): every visited node pays a
    /// distance even when the bitmap rejects it.
    pub graph_index: bool,
    /// Quantized payload (SQ/PQ): in-scan distances cost `c_c`, not `c_d`.
    pub quantized: bool,
}

impl CostParams {
    /// Per-visited-record distance cost of an ANN scan over this index.
    fn c_scan(&self, i: &CostInputs) -> f64 {
        if i.quantized {
            self.c_c
        } else {
            self.c_d
        }
    }

    /// Eq. 1.
    pub fn cost_a(&self, i: &CostInputs) -> f64 {
        let n = i.n as f64;
        self.t0_row * n + i.s.max(0.0) * n * self.c_d
    }

    /// Eq. 2 with the graph-index adjustment (no `s·` discount when every
    /// visited node pays a distance anyway).
    pub fn cost_b(&self, i: &CostInputs) -> f64 {
        let n = i.n as f64;
        let s = i.s.clamp(1e-6, 1.0);
        let per_visit = if i.graph_index {
            self.c_p + self.c_scan(i)
        } else {
            self.c_p + s * self.c_scan(i)
        };
        self.t0_row * n
            + (i.gamma * n * (1.0 / s)).min(n) * per_visit
            + self.sigma * i.k as f64 * self.c_d
    }

    /// Eq. 3 plus the pulled-row filter-evaluation term.
    pub fn cost_c(&self, i: &CostInputs) -> f64 {
        let n = i.n as f64;
        let s = i.s.clamp(1e-6, 1.0);
        let scan = (i.beta * n * (1.0 / s)).min(n) * self.c_scan(i);
        let filter = if i.s >= 1.0 {
            0.0
        } else {
            (self.sigma * i.k as f64 / s).min(n) * self.c_f
        };
        scan + filter + self.sigma * i.k as f64 * self.c_d
    }

    /// Plan D: the Plan-B bitset feeds a predicate-aware graph traversal.
    /// Failing nodes steer navigation (bounded multi-hop detours) while only
    /// passing nodes enter the beam, so the visit amplification grows as
    /// `1/√s` rather than the bitmap scan's `1/s` — every visited node still
    /// pays a bitmap test plus an in-scan distance. Non-graph indexes cannot
    /// traverse, so they report infinite cost and Plan B keeps its IVF niche.
    pub fn cost_d(&self, i: &CostInputs) -> f64 {
        if !i.graph_index {
            return f64::INFINITY;
        }
        let n = i.n as f64;
        let s = i.s.clamp(1e-6, 1.0);
        self.t0_row * n
            + (i.beta * n / s.sqrt()).min(n) * (self.c_p + self.c_scan(i))
            + self.sigma * i.k as f64 * self.c_d
    }

    /// Pick the minimal-cost strategy. Tie order favours the simpler plan:
    /// A over everything, C over B and D, B over D.
    pub fn choose(&self, i: &CostInputs) -> Strategy {
        let mut best = (Strategy::FilteredTraversal, self.cost_d(i));
        for cand in [
            (Strategy::PreFilter, self.cost_b(i)),
            (Strategy::PostFilter, self.cost_c(i)),
            (Strategy::BruteForce, self.cost_a(i)),
        ] {
            if cand.1 <= best.1 {
                best = cand;
            }
        }
        best.0
    }

    /// All four costs (EXPLAIN output).
    pub fn all_costs(&self, i: &CostInputs) -> [(Strategy, f64); 4] {
        [
            (Strategy::BruteForce, self.cost_a(i)),
            (Strategy::PreFilter, self.cost_b(i)),
            (Strategy::PostFilter, self.cost_c(i)),
            (Strategy::FilteredTraversal, self.cost_d(i)),
        ]
    }

    /// Calibrate `c_d`/`c_c`/`c_p` ratios with micro-probes over the actual
    /// kernels (exact distance, ADC table lookup, bitset test). The absolute
    /// scale is normalized to `c_d = 1`.
    pub fn calibrate(dim: usize) -> CostParams {
        use bh_common::Stopwatch;
        let n = 4096;
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..dim).map(|i| (dim - i) as f32 * 0.1).collect();

        // Exact distance.
        let t = Stopwatch::start();
        let mut acc = 0.0f32;
        for _ in 0..n {
            acc += bh_vector::distance::l2_sq(&a, &b);
        }
        let t_d = t.elapsed_nanos() as f64 / n as f64;

        // ADC-style lookup chain: m table lookups + adds.
        let m = (dim / 4).max(1);
        let table: Vec<f32> = (0..m * 256).map(|i| i as f32).collect();
        let codes: Vec<u8> = (0..m).map(|i| (i * 37 % 256) as u8).collect();
        let t = Stopwatch::start();
        for _ in 0..n {
            let mut s = 0.0f32;
            for (sub, &c) in codes.iter().enumerate() {
                s += table[sub * 256 + c as usize];
            }
            acc += s;
        }
        let t_c = t.elapsed_nanos() as f64 / n as f64;

        // Bitmap test.
        let bits = bh_common::Bitset::full(4096);
        let t = Stopwatch::start();
        let mut hits = 0usize;
        for i in 0..n {
            if bits.contains(i * 7 % 4096) {
                hits += 1;
            }
        }
        let t_p = t.elapsed_nanos() as f64 / n as f64;
        std::hint::black_box((acc, hits));

        let scale = t_d.max(1.0);
        CostParams {
            c_p: (t_p / scale).clamp(1e-4, 0.5),
            c_c: (t_c / scale).clamp(1e-3, 1.0),
            ..CostParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// HNSW-backed inputs (the common case): β from ef_search = 128.
    fn graph(n: usize, s: f64, k: usize) -> CostInputs {
        let beta = (128.0 / n.max(1) as f64).min(1.0);
        CostInputs { n, s, beta, gamma: (beta * 2.0).min(1.0), k, graph_index: true, quantized: false }
    }

    fn quantized(n: usize, s: f64, k: usize) -> CostInputs {
        CostInputs { graph_index: false, quantized: true, ..graph(n, s, k) }
    }

    #[test]
    fn tiny_pass_fraction_chooses_brute_force() {
        // The paper's "99% selectivity" workload: almost no rows pass; the
        // post-filter iterator would pull σ·k/s rows through row-wise
        // evaluation, so exact distances on the survivors win. On large
        // graph tables Plan D pushes A's region down to sub-percent pass
        // fractions (detour traversal stays cheap), hence the smaller s.
        let p = CostParams::default();
        assert_eq!(p.choose(&graph(20_000, 0.01, 10)), Strategy::BruteForce);
        assert_eq!(p.choose(&graph(1_000_000, 0.002, 100)), Strategy::BruteForce);
    }

    #[test]
    fn near_full_pass_fraction_chooses_post_filter() {
        // The paper's "1% selectivity" workload: ~99% of rows pass.
        let p = CostParams::default();
        assert_eq!(p.choose(&graph(20_000, 0.99, 10)), Strategy::PostFilter);
        assert_eq!(p.choose(&graph(1_000_000, 0.99, 100)), Strategy::PostFilter);
    }

    #[test]
    fn pure_vector_search_is_post_filter() {
        let p = CostParams::default();
        assert_eq!(p.choose(&graph(1_000_000, 1.0, 10)), Strategy::PostFilter);
    }

    #[test]
    fn mid_selectivity_large_k_chooses_pre_filter_on_quantized() {
        // Large k makes the post-filter pull expensive while the bitmap ANN
        // scan amortizes the structured pass — Plan B's niche. On graph
        // indexes Plan D now dominates B, so the niche is IVF/quantized.
        let p = CostParams::default();
        assert_eq!(p.choose(&quantized(1_000_000, 0.1, 1_000)), Strategy::PreFilter);
        assert_eq!(p.choose(&quantized(1_000_000, 0.05, 1_000)), Strategy::PreFilter);
    }

    #[test]
    fn mid_selectivity_graph_chooses_filtered_traversal() {
        // Plan D's regime: mid-range pass fraction on a graph index, where
        // √s detour amplification beats both the bitmap re-draw (B) and the
        // row-wise post-filter pull (C), and s·n exact distances (A) are
        // already too many.
        let p = CostParams::default();
        assert_eq!(p.choose(&graph(1_000_000, 0.1, 1_000)), Strategy::FilteredTraversal);
        assert_eq!(p.choose(&graph(1_000_000, 0.05, 1_000)), Strategy::FilteredTraversal);
    }

    #[test]
    fn plan_d_is_infinite_for_non_graph_indexes() {
        let p = CostParams::default();
        assert_eq!(p.cost_d(&quantized(100_000, 0.2, 100)), f64::INFINITY);
        // And therefore never chosen for them at any selectivity.
        for i in 1..=99 {
            let s = i as f64 / 100.0;
            assert_ne!(p.choose(&quantized(1_000_000, s, 1_000)), Strategy::FilteredTraversal);
        }
    }

    #[test]
    fn plan_d_dominates_plan_b_on_graph_indexes() {
        // β·n/√s visited nodes < γ·n/s (γ = 2β, √s ≤ 1 ≤ 2/√s): a graph that
        // can steer through failing nodes never loses to re-drawing from the
        // bitmap scan.
        let p = CostParams::default();
        for s in [0.01, 0.1, 0.3, 0.7, 0.99] {
            let g = graph(500_000, s, 100);
            assert!(p.cost_d(&g) < p.cost_b(&g), "s={s}");
        }
    }

    #[test]
    fn decision_boundary_sweep_matches_plan_regions() {
        // At large k, sweeping s from 0 → 1 transitions A → D → C on graph
        // indexes and A → B → C on quantized ones, with no interleaving
        // (each plan wins one contiguous region).
        let p = CostParams::default();
        let mut graph_seen = Vec::new();
        let mut quant_seen = Vec::new();
        for i in 1..=999 {
            let s = i as f64 / 1000.0;
            let w = p.choose(&graph(1_000_000, s, 1_000));
            if graph_seen.last() != Some(&w) {
                graph_seen.push(w);
            }
            let w = p.choose(&quantized(1_000_000, s, 1_000));
            if quant_seen.last() != Some(&w) {
                quant_seen.push(w);
            }
        }
        assert_eq!(
            graph_seen,
            vec![Strategy::BruteForce, Strategy::FilteredTraversal, Strategy::PostFilter],
            "unexpected graph decision regions"
        );
        assert_eq!(
            quant_seen,
            vec![Strategy::BruteForce, Strategy::PreFilter, Strategy::PostFilter],
            "unexpected quantized decision regions"
        );
    }

    #[test]
    fn quantized_index_discounts_scan_cost() {
        let p = CostParams::default();
        let g = graph(100_000, 0.5, 10);
        let q = quantized(100_000, 0.5, 10);
        assert!(p.cost_c(&q) < p.cost_c(&g), "ADC scan must be cheaper");
        assert!(p.cost_b(&q) < p.cost_b(&g));
    }

    #[test]
    fn costs_are_monotone_in_n() {
        let p = CostParams::default();
        for s in [0.01, 0.5, 0.99] {
            let small = graph(10_000, s, 10);
            let large = graph(1_000_000, s, 10);
            assert!(p.cost_a(&large) > p.cost_a(&small));
            assert!(p.cost_b(&large) > p.cost_b(&small));
            assert!(p.cost_c(&large) >= p.cost_c(&small));
            assert!(p.cost_d(&large) > p.cost_d(&small));
        }
    }

    #[test]
    fn plan_a_linear_in_s() {
        let p = CostParams::default();
        let lo = p.cost_a(&graph(100_000, 0.1, 10));
        let hi = p.cost_a(&graph(100_000, 0.2, 10));
        let hi2 = p.cost_a(&graph(100_000, 0.3, 10));
        assert!(((hi - lo) - (hi2 - hi)).abs() < 1e-6, "Plan A must be linear in s");
    }

    #[test]
    fn zero_k_and_zero_n_are_sane() {
        let p = CostParams::default();
        let i = graph(0, 0.5, 0);
        assert_eq!(p.cost_a(&i), 0.0);
        assert!(p.cost_b(&i) >= 0.0);
        assert!(p.cost_c(&i) >= 0.0);
        assert!(p.cost_d(&i) >= 0.0);
    }

    #[test]
    fn all_costs_lists_four_and_matches_choice() {
        let p = CostParams::default();
        for i in [graph(1000, 0.5, 5), quantized(1000, 0.5, 5), graph(1_000_000, 0.1, 1_000)] {
            let costs = p.all_costs(&i);
            assert_eq!(costs.len(), 4);
            let min = costs.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
            assert_eq!(min, p.choose(&i));
        }
    }

    #[test]
    fn calibration_preserves_kernel_ordering() {
        let p = CostParams::calibrate(64);
        assert_eq!(p.c_d, 1.0);
        assert!(p.c_c < p.c_d, "ADC must be cheaper than exact distance");
        assert!(p.c_p < p.c_c, "bitmap test must be cheaper than ADC");
        assert!(p.c_f > p.c_d, "row-wise filter eval outweighs one distance");
    }
}
