//! Parameterized plan caching and short-circuit processing (§IV-C "Query
//! processing overhead").
//!
//! Hybrid workloads are highly repetitive: the same SELECT shape with a
//! different query vector, filter constant or threshold on every call. The
//! cache keys on a **parameterized signature** — the statement structure
//! with every literal masked — and stores the expensive-to-recompute parts
//! of planning: the rule results (pruned column set) and the CBO's strategy
//! choice. **Short-circuit processing** additionally bypasses planning
//! entirely for trivially-shaped queries (single conjunct or none, plain
//! top-k).

use crate::bind::{BoundSelect, ProjItem};
use crate::cost::Strategy;
use bh_storage::predicate::Predicate;
use bh_common::sync::{classes, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the cache preserves across parameter changes.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The CBO's strategy choice for this shape/selectivity band.
    pub strategy: Strategy,
    /// Scalar columns the executor must read (post column-pruning).
    pub columns_needed: Vec<String>,
    /// Whether the projection asks for the raw vector column.
    pub needs_raw_vectors: bool,
    /// Histogram-estimated pass fraction of the structured predicate, when
    /// the query has both a vector search and a filter. Plan D feeds it to
    /// the traversal (beam widening + hop budget); stale-by-a-band values
    /// only shift those knobs, never correctness.
    pub selectivity: Option<f32>,
}

/// Structural signature of a bound query with literals masked.
pub fn plan_signature(bound: &BoundSelect) -> String {
    let mut sig = String::with_capacity(128);
    sig.push_str(&bound.table);
    sig.push('|');
    for p in &bound.projection {
        match p {
            ProjItem::Column(c) => {
                sig.push_str(c);
                sig.push(',');
            }
            ProjItem::Distance(_) => sig.push_str("<dist>,"),
        }
    }
    sig.push('|');
    predicate_shape(&bound.predicate, &mut sig);
    sig.push('|');
    if let Some(v) = &bound.vector {
        // Query vector and k are parameters; column/metric/range-presence
        // are structure.
        sig.push_str(&format!(
            "ann:{}:{:?}:{}",
            v.column,
            v.metric,
            if v.range.is_some() { "range" } else { "topk" }
        ));
    }
    if let Some((c, asc)) = &bound.scalar_order {
        sig.push_str(&format!("|sort:{c}:{asc}"));
    }
    sig
}

fn predicate_shape(p: &Predicate, out: &mut String) {
    match p {
        Predicate::True => out.push_str("T"),
        Predicate::Eq(c, _) => out.push_str(&format!("eq({c})")),
        Predicate::Range { column, lo, hi, .. } => out.push_str(&format!(
            "rng({column},{},{})",
            lo.is_some() as u8,
            hi.is_some() as u8
        )),
        Predicate::RegexMatch(c, _) => out.push_str(&format!("re({c})")),
        Predicate::In(c, vs) => out.push_str(&format!("in({c},{})", vs.len())),
        Predicate::And(ps) => {
            out.push_str("and(");
            for p in ps {
                predicate_shape(p, out);
                out.push(';');
            }
            out.push(')');
        }
        Predicate::Or(ps) => {
            out.push_str("or(");
            for p in ps {
                predicate_shape(p, out);
                out.push(';');
            }
            out.push(')');
        }
        Predicate::Not(p) => {
            out.push_str("not(");
            predicate_shape(p, out);
            out.push(')');
        }
    }
}

/// Is the query simple enough to skip full optimization? (§IV-C
/// short-circuit: plain vector top-k with at most one scalar conjunct.)
pub fn is_short_circuitable(bound: &BoundSelect) -> bool {
    let simple_pred = match &bound.predicate {
        Predicate::True | Predicate::Eq(..) | Predicate::Range { .. } => true,
        Predicate::And(ps) => ps.len() <= 1,
        _ => false,
    };
    simple_pred && bound.scalar_order.is_none()
}

/// The cache itself.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<HashMap<String, CachedPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            map: Mutex::new(&classes::PLANCACHE_MAP, HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a cached plan (counts a hit/miss).
    pub fn get(&self, signature: &str) -> Option<CachedPlan> {
        let got = self.map.lock().get(signature).cloned();
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Store a plan under its signature.
    pub fn put(&self, signature: String, plan: CachedPlan) {
        self.map.lock().insert(signature, plan);
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use bh_sql::{parse_statement, Statement};
    use bh_storage::schema::TableSchema;
    use bh_storage::value::ColumnType;
    use bh_vector::{IndexKind, Metric};

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(2))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 2, Metric::L2)
    }

    fn bound(sql: &str) -> BoundSelect {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        bind_select(&schema(), &sel).unwrap()
    }

    #[test]
    fn same_shape_different_params_share_signature() {
        let a = bound(
            "SELECT id FROM t WHERE label = 'animal' \
             ORDER BY L2Distance(emb, [0.1, 0.2]) LIMIT 10",
        );
        let b = bound(
            "SELECT id FROM t WHERE label = 'plant' \
             ORDER BY L2Distance(emb, [0.9, 0.8]) LIMIT 50",
        );
        assert_eq!(plan_signature(&a), plan_signature(&b));
    }

    #[test]
    fn different_shapes_differ() {
        let base = bound("SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 10");
        let with_filter = bound(
            "SELECT id FROM t WHERE label = 'x' ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 10",
        );
        let with_range =
            bound("SELECT id FROM t WHERE L2Distance(emb, [0.0, 0.0]) < 1.0 LIMIT 10");
        let scalar = bound("SELECT id FROM t WHERE id = 3");
        let sigs = [
            plan_signature(&base),
            plan_signature(&with_filter),
            plan_signature(&with_range),
            plan_signature(&scalar),
        ];
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn range_count_in_in_list_is_structural() {
        let two = bound("SELECT id FROM t WHERE label IN ('a', 'b')");
        let three = bound("SELECT id FROM t WHERE label IN ('a', 'b', 'c')");
        assert_ne!(plan_signature(&two), plan_signature(&three));
    }

    #[test]
    fn cache_roundtrip_and_stats() {
        let cache = PlanCache::new();
        let b = bound("SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 10");
        let sig = plan_signature(&b);
        assert!(cache.get(&sig).is_none());
        cache.put(
            sig.clone(),
            CachedPlan {
                strategy: Strategy::PostFilter,
                columns_needed: vec!["id".into()],
                needs_raw_vectors: false,
                selectivity: None,
            },
        );
        let hit = cache.get(&sig).unwrap();
        assert_eq!(hit.strategy, Strategy::PostFilter);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn short_circuit_detection() {
        assert!(is_short_circuitable(&bound(
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 5"
        )));
        assert!(is_short_circuitable(&bound(
            "SELECT id FROM t WHERE label = 'a' ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 5"
        )));
        assert!(!is_short_circuitable(&bound(
            "SELECT id FROM t WHERE label = 'a' AND id < 9 \
             ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 5"
        )));
        assert!(!is_short_circuitable(&bound("SELECT id FROM t ORDER BY id LIMIT 5")));
    }
}
