//! Query results.

use bh_storage::value::Value;

/// A materialized result set: named columns, row-major values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Row-major cell values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// An empty result set with the given output columns.
    pub fn new(columns: Vec<String>) -> Self {
        Self { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were returned.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of one column.
    pub fn column_values(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Render as an aligned text table (examples / debugging).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut rs = ResultSet::new(vec!["id".into(), "dist".into()]);
        rs.rows.push(vec![Value::UInt64(1), Value::Float64(0.5)]);
        rs.rows.push(vec![Value::UInt64(2), Value::Float64(0.7)]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.column_index("dist"), Some(1));
        assert_eq!(rs.column_index("nope"), None);
        assert_eq!(
            rs.column_values("id").unwrap(),
            vec![Value::UInt64(1), Value::UInt64(2)]
        );
    }

    #[test]
    fn table_rendering() {
        let mut rs = ResultSet::new(vec!["name".into()]);
        rs.rows.push(vec![Value::Str("verylongvalue".into())]);
        let t = rs.to_table_string();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].contains("verylongvalue"));
    }
}
