//! Semantic analysis: AST → typed, validated query structures.
//!
//! The binder is where hybrid-query pattern detection happens (§II-C "plan
//! generation"): it walks the WHERE clause and ORDER BY list, recognizes
//! distance-function calls over an indexed vector column, and splits the
//! statement into a scalar [`Predicate`] plus an optional [`VectorQuery`]
//! (top-k and/or distance-range constraint). Everything else — literals,
//! column references, datetime strings — is coerced against the table
//! schema here, so later stages never see raw AST.

use bh_common::{BhError, Result};
use bh_sql::ast::{BinaryOp, Expr, Lit, SelectStmt, SelectItem};
use bh_storage::predicate::Predicate;
use bh_storage::schema::TableSchema;
use bh_storage::value::{ColumnType, Value};
use bh_vector::Metric;

/// The vector half of a hybrid query.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorQuery {
    /// Target vector column.
    pub column: String,
    /// Distance metric of the ORDER BY / range expression.
    pub metric: Metric,
    /// The query embedding.
    pub query: Vec<f32>,
    /// Top-k bound (from LIMIT); `None` for pure range queries.
    pub k: Option<usize>,
    /// Distance-range constraint (`L2Distance(…) < r`).
    pub range: Option<f32>,
    /// Output alias of the distance expression, if any (`AS dist`).
    pub alias: Option<String>,
}

/// One projection output.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjItem {
    /// A table column, by name.
    Column(String),
    /// The distance value, labeled with this output name.
    Distance(String),
}

impl ProjItem {
    /// Output column name of this item.
    pub fn name(&self) -> &str {
        match self {
            ProjItem::Column(c) => c,
            ProjItem::Distance(n) => n,
        }
    }
}

/// A fully bound SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    /// Source table.
    pub table: String,
    /// Resolved output items.
    pub projection: Vec<ProjItem>,
    /// Scalar half of the WHERE clause.
    pub predicate: Predicate,
    /// Vector half of the query, if any.
    pub vector: Option<VectorQuery>,
    /// Scalar ordering (column, ascending) for non-vector ORDER BY.
    pub scalar_order: Option<(String, bool)>,
    /// `LIMIT` count.
    pub limit: Option<usize>,
}

/// Bind a SELECT against a schema.
pub fn bind_select(schema: &TableSchema, stmt: &SelectStmt) -> Result<BoundSelect> {
    if stmt.table != schema.name {
        return Err(BhError::Plan(format!(
            "statement targets {} but was bound against {}",
            stmt.table, schema.name
        )));
    }

    // ORDER BY: either one distance expression or one scalar column.
    let mut vector: Option<VectorQuery> = None;
    let mut scalar_order: Option<(String, bool)> = None;
    if let Some(first) = stmt.order_by.first() {
        if stmt.order_by.len() > 1 {
            return Err(BhError::Plan("only single-key ORDER BY is supported".into()));
        }
        if let Some((fname, args)) = first.expr.as_distance_call() {
            if !first.asc {
                return Err(BhError::Plan(
                    "ORDER BY distance DESC is not a nearest-neighbor query".into(),
                ));
            }
            let (column, qvec, metric) = bind_distance_call(schema, fname, args)?;
            vector = Some(VectorQuery {
                column,
                metric,
                query: qvec,
                k: stmt.limit.map(|l| l as usize),
                range: None,
                alias: first.alias.clone(),
            });
        } else if let Expr::Column(c) = &first.expr {
            let def = schema
                .column(c)
                .ok_or_else(|| BhError::Plan(format!("ORDER BY unknown column {c}")))?;
            if def.ty.is_vector() {
                return Err(BhError::Plan("cannot ORDER BY a raw vector column".into()));
            }
            scalar_order = Some((c.clone(), first.asc));
        } else {
            return Err(BhError::Plan("unsupported ORDER BY expression".into()));
        }
    }

    // WHERE: split conjuncts into scalar predicate and distance ranges.
    let mut scalar_preds = Vec::new();
    if let Some(w) = &stmt.where_clause {
        for conjunct in split_conjuncts(w) {
            match extract_distance_range(schema, conjunct)? {
                Some((column, qvec, metric, radius)) => match &mut vector {
                    Some(v) => {
                        if v.column != column {
                            return Err(BhError::Plan(
                                "distance range and ORDER BY target different columns".into(),
                            ));
                        }
                        if v.metric != metric {
                            return Err(BhError::Plan(
                                "distance range and ORDER BY use different metrics".into(),
                            ));
                        }
                        if v.query != qvec {
                            return Err(BhError::Plan(
                                "distance range and ORDER BY use different query vectors".into(),
                            ));
                        }
                        v.range = Some(v.range.map(|r| r.min(radius)).unwrap_or(radius));
                    }
                    None => {
                        vector = Some(VectorQuery {
                            column,
                            metric,
                            query: qvec,
                            k: stmt.limit.map(|l| l as usize),
                            range: Some(radius),
                            alias: None,
                        });
                    }
                },
                None => scalar_preds.push(bind_predicate(schema, conjunct)?),
            }
        }
    }
    let predicate = Predicate::and(scalar_preds);

    // Vector ORDER BY requires a LIMIT (top-k semantics) unless a range
    // constraint bounds the result.
    if let Some(v) = &vector {
        if v.k.is_none() && v.range.is_none() {
            return Err(BhError::Plan(
                "vector search needs LIMIT k or a distance range".into(),
            ));
        }
        // Validate the indexed column.
        let def = schema
            .column(&v.column)
            .ok_or_else(|| BhError::Plan(format!("unknown vector column {}", v.column)))?;
        if !def.ty.is_vector() {
            return Err(BhError::Plan(format!("{} is not a vector column", v.column)));
        }
    }

    // Projection.
    let mut projection = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Star => {
                for def in &schema.columns {
                    projection.push(ProjItem::Column(def.name.clone()));
                }
                if let Some(v) = &vector {
                    if let Some(a) = &v.alias {
                        projection.push(ProjItem::Distance(a.clone()));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => match expr {
                Expr::Column(c) => {
                    if schema.column(c).is_some() {
                        projection.push(ProjItem::Column(c.clone()));
                    } else if vector
                        .as_ref()
                        .and_then(|v| v.alias.as_deref())
                        .map(|a| a == c)
                        .unwrap_or(false)
                    {
                        projection.push(ProjItem::Distance(c.clone()));
                    } else {
                        return Err(BhError::Plan(format!("unknown column {c}")));
                    }
                }
                other => {
                    let Some((fname, args)) = other.as_distance_call() else {
                        return Err(BhError::Plan(format!(
                            "unsupported projection expression: {other:?}"
                        )));
                    };
                    let (column, qvec, metric) = bind_distance_call(schema, fname, args)?;
                    match &vector {
                        Some(v) if v.column == column && v.query == qvec && v.metric == metric => {
                            projection.push(ProjItem::Distance(
                                alias.clone().unwrap_or_else(|| "distance".into()),
                            ));
                        }
                        _ => {
                            return Err(BhError::Plan(
                                "projected distance must match the ORDER BY distance".into(),
                            ))
                        }
                    }
                }
            },
        }
    }
    if projection.is_empty() {
        return Err(BhError::Plan("empty projection".into()));
    }

    Ok(BoundSelect {
        table: stmt.table.clone(),
        projection,
        predicate,
        vector,
        scalar_order,
        limit: stmt.limit.map(|l| l as usize),
    })
}

/// Split an expression into top-level AND conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { op: BinaryOp::And, lhs, rhs } => {
            let mut out = split_conjuncts(lhs);
            out.extend(split_conjuncts(rhs));
            out
        }
        other => vec![other],
    }
}

/// Recognize `Distance(col, [q]) < r` (either operand order). Returns the
/// bound components or `None` when the conjunct is purely scalar.
fn extract_distance_range(
    schema: &TableSchema,
    e: &Expr,
) -> Result<Option<(String, Vec<f32>, Metric, f32)>> {
    let Expr::Binary { op, lhs, rhs } = e else { return Ok(None) };
    let ((fname, args), lit, op_towards_lit) = if let Some(call) = lhs.as_distance_call() {
        (call, rhs.as_ref(), *op)
    } else if let Some(call) = rhs.as_distance_call() {
        // Mirror `r > Distance(…)` to `Distance(…) < r`.
        let mirrored = match op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => *other,
        };
        (call, lhs.as_ref(), mirrored)
    } else {
        return Ok(None);
    };
    if !matches!(op_towards_lit, BinaryOp::Lt | BinaryOp::Le) {
        return Err(BhError::Plan(
            "only upper-bounded distance ranges are supported (Distance(…) < r)".into(),
        ));
    }
    let (column, qvec, metric) = bind_distance_call(schema, fname, args)?;
    let radius = match lit {
        Expr::Literal(Lit::Float(f)) => *f as f32,
        Expr::Literal(Lit::Int(i)) => *i as f32,
        other => {
            return Err(BhError::Plan(format!("distance bound must be a number, got {other:?}")))
        }
    };
    Ok(Some((column, qvec, metric, radius)))
}

/// Bind `L2Distance(col, [q…])` and friends.
fn bind_distance_call(
    schema: &TableSchema,
    fname: &str,
    args: &[Expr],
) -> Result<(String, Vec<f32>, Metric)> {
    let metric = match fname.to_ascii_lowercase().as_str() {
        "l2distance" => Metric::L2,
        "ipdistance" => Metric::InnerProduct,
        "cosinedistance" => Metric::Cosine,
        other => return Err(BhError::Plan(format!("unknown distance function {other}"))),
    };
    if args.len() != 2 {
        return Err(BhError::Plan(format!("{fname} takes (column, query_vector)")));
    }
    // Accept either argument order.
    let (column, vec_expr) = match (&args[0], &args[1]) {
        (Expr::Column(c), other) => (c, other),
        (other, Expr::Column(c)) => (c, other),
        _ => return Err(BhError::Plan(format!("{fname} needs a column argument"))),
    };
    let def = schema
        .column(column)
        .ok_or_else(|| BhError::Plan(format!("unknown column {column}")))?;
    let Expr::Literal(Lit::Array(vals)) = vec_expr else {
        return Err(BhError::Plan(format!("{fname} needs an array literal query vector")));
    };
    let qvec: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
    let expected_dim = match def.ty {
        ColumnType::Vector(0) => schema.index_on(column).map(|i| i.spec.dim).unwrap_or(0),
        ColumnType::Vector(d) => d,
        _ => return Err(BhError::Plan(format!("{column} is not a vector column"))),
    };
    if expected_dim != 0 && qvec.len() != expected_dim {
        return Err(BhError::DimensionMismatch { expected: expected_dim, got: qvec.len() });
    }
    Ok((column.clone(), qvec, metric))
}

/// Bind a scalar WHERE conjunct to a storage predicate.
pub fn bind_predicate(schema: &TableSchema, e: &Expr) -> Result<Predicate> {
    match e {
        Expr::Binary { op: BinaryOp::And, .. } => {
            let parts = split_conjuncts(e)
                .into_iter()
                .map(|c| bind_predicate(schema, c))
                .collect::<Result<Vec<_>>>()?;
            Ok(Predicate::and(parts))
        }
        Expr::Binary { op: BinaryOp::Or, lhs, rhs } => Ok(Predicate::Or(vec![
            bind_predicate(schema, lhs)?,
            bind_predicate(schema, rhs)?,
        ])),
        Expr::Not(inner) => Ok(Predicate::Not(Box::new(bind_predicate(schema, inner)?))),
        Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
            // Normalize to column-op-literal.
            let (col, lit, op) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column(c), Expr::Literal(l)) => (c, l, *op),
                (Expr::Literal(l), Expr::Column(c)) => (
                    c,
                    l,
                    match op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::Le => BinaryOp::Ge,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::Ge => BinaryOp::Le,
                        other => *other,
                    },
                ),
                _ => {
                    return Err(BhError::Plan(format!(
                        "unsupported comparison shape: {e:?}"
                    )))
                }
            };
            let ty = column_type(schema, col)?;
            let v = literal_to_value(lit, ty)?;
            Ok(match op {
                BinaryOp::Eq => Predicate::eq(col, v),
                BinaryOp::Ne => Predicate::Not(Box::new(Predicate::eq(col, v))),
                BinaryOp::Lt => Predicate::range_open(col, None, Some(v), false, true),
                BinaryOp::Le => Predicate::range(col, None, Some(v)),
                BinaryOp::Gt => Predicate::range_open(col, Some(v), None, true, false),
                BinaryOp::Ge => Predicate::range(col, Some(v), None),
                // lint: allow(panic) - the `op.is_comparison()` arm guard
                // restricts `op` to the six comparison operators matched above
                _ => unreachable!("comparison checked"),
            })
        }
        Expr::Between { expr, lo, hi, negated } => {
            let Expr::Column(col) = expr.as_ref() else {
                return Err(BhError::Plan("BETWEEN requires a column".into()));
            };
            let ty = column_type(schema, col)?;
            let (Expr::Literal(l), Expr::Literal(h)) = (lo.as_ref(), hi.as_ref()) else {
                return Err(BhError::Plan("BETWEEN bounds must be literals".into()));
            };
            let p = Predicate::range(
                col,
                Some(literal_to_value(l, ty)?),
                Some(literal_to_value(h, ty)?),
            );
            Ok(if *negated { Predicate::Not(Box::new(p)) } else { p })
        }
        Expr::InList { expr, list, negated } => {
            let Expr::Column(col) = expr.as_ref() else {
                return Err(BhError::Plan("IN requires a column".into()));
            };
            let ty = column_type(schema, col)?;
            let vals = list
                .iter()
                .map(|item| match item {
                    Expr::Literal(l) => literal_to_value(l, ty),
                    other => Err(BhError::Plan(format!("IN list item must be literal: {other:?}"))),
                })
                .collect::<Result<Vec<_>>>()?;
            let p = Predicate::In(col.clone(), vals);
            Ok(if *negated { Predicate::Not(Box::new(p)) } else { p })
        }
        Expr::Regexp { expr, pattern } => {
            let Expr::Column(col) = expr.as_ref() else {
                return Err(BhError::Plan("REGEXP requires a column".into()));
            };
            if column_type(schema, col)? != ColumnType::Str {
                return Err(BhError::Plan(format!("REGEXP on non-string column {col}")));
            }
            Predicate::regex(col, pattern)
        }
        other => Err(BhError::Plan(format!("unsupported predicate expression: {other:?}"))),
    }
}

fn column_type(schema: &TableSchema, col: &str) -> Result<ColumnType> {
    schema
        .column(col)
        .map(|d| d.ty)
        .ok_or_else(|| BhError::Plan(format!("unknown column {col}")))
}

/// Coerce an AST literal to a typed [`Value`] for a column of `ty`.
pub fn literal_to_value(lit: &Lit, ty: ColumnType) -> Result<Value> {
    let fail = || {
        BhError::Plan(format!(
            "cannot use literal {lit} with a {} column",
            ty.name()
        ))
    };
    Ok(match (lit, ty) {
        (Lit::Null, _) => Value::Null,
        (Lit::Int(v), ColumnType::UInt64) => {
            Value::UInt64(u64::try_from(*v).map_err(|_| fail())?)
        }
        (Lit::Int(v), ColumnType::Int64) => Value::Int64(*v),
        (Lit::Int(v), ColumnType::Float64) => Value::Float64(*v as f64),
        (Lit::Int(v), ColumnType::DateTime) => {
            Value::DateTime(u64::try_from(*v).map_err(|_| fail())?)
        }
        (Lit::Float(v), ColumnType::Float64) => Value::Float64(*v),
        (Lit::Str(s), ColumnType::Str) => Value::Str(s.clone()),
        (Lit::Str(s), ColumnType::DateTime) => Value::DateTime(parse_datetime(s)?),
        (Lit::Array(v), ColumnType::Vector(d)) => {
            if d != 0 && v.len() != d {
                return Err(BhError::DimensionMismatch { expected: d, got: v.len() });
            }
            Value::Vector(v.iter().map(|&x| x as f32).collect())
        }
        _ => return Err(fail()),
    })
}

/// Parse `YYYY-MM-DD[ HH:MM:SS]` to epoch seconds (UTC, proleptic Gregorian).
pub fn parse_datetime(s: &str) -> Result<u64> {
    let bad = || BhError::Plan(format!("bad datetime literal '{s}'"));
    let (date, time) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if dp.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    let (mut hh, mut mm, mut ss) = (0u32, 0u32, 0u32);
    if let Some(t) = time {
        let mut tp = t.split(':');
        hh = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        mm = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        ss = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if tp.next().is_some() || hh > 23 || mm > 59 || ss > 59 {
            return Err(bad());
        }
    }
    // Howard Hinnant's days_from_civil.
    let y_adj = y - i64::from(m <= 2);
    let era = if y_adj >= 0 { y_adj } else { y_adj - 399 } / 400;
    let yoe = (y_adj - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe as i64 - 719_468;
    if days < 0 {
        return Err(bad());
    }
    Ok(days as u64 * 86_400 + u64::from(hh) * 3_600 + u64::from(mm) * 60 + u64::from(ss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_sql::parse_statement;
    use bh_sql::Statement;
    use bh_vector::IndexKind;

    fn schema() -> TableSchema {
        TableSchema::new("images")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("published_time", ColumnType::DateTime)
            .with_column("score", ColumnType::Float64)
            .with_column("embedding", ColumnType::Vector(2))
            .with_vector_index("ann", "embedding", IndexKind::Hnsw, 2, Metric::L2)
    }

    fn bind(sql: &str) -> Result<BoundSelect> {
        let Statement::Select(sel) = parse_statement(sql)? else { panic!("not select") };
        bind_select(&schema(), &sel)
    }

    #[test]
    fn hybrid_query_binds_fully() {
        let b = bind(
            "SELECT id, dist FROM images \
             WHERE label = 'animal' AND published_time >= '2024-10-10 10:00:00' \
             ORDER BY L2Distance(embedding, [0.1, 0.2]) AS dist LIMIT 100",
        )
        .unwrap();
        let v = b.vector.unwrap();
        assert_eq!(v.column, "embedding");
        assert_eq!(v.metric, Metric::L2);
        assert_eq!(v.k, Some(100));
        assert_eq!(v.alias.as_deref(), Some("dist"));
        assert!((v.query[0] - 0.1).abs() < 1e-6);
        assert_eq!(b.projection.len(), 2);
        assert_eq!(b.projection[1], ProjItem::Distance("dist".into()));
        // Predicate has both conjuncts, datetime parsed.
        let cols = b.predicate.referenced_columns();
        assert_eq!(cols, vec!["label".to_string(), "published_time".to_string()]);
    }

    #[test]
    fn distance_range_in_where_becomes_range_query() {
        let b = bind(
            "SELECT id FROM images WHERE L2Distance(embedding, [0.0, 0.0]) < 0.5 LIMIT 10",
        )
        .unwrap();
        let v = b.vector.unwrap();
        assert_eq!(v.range, Some(0.5));
        assert_eq!(v.k, Some(10));
        assert_eq!(b.predicate, Predicate::True);
    }

    #[test]
    fn range_and_order_combine_when_consistent() {
        let b = bind(
            "SELECT id FROM images WHERE L2Distance(embedding, [0.0, 0.0]) < 2.0 \
             ORDER BY L2Distance(embedding, [0.0, 0.0]) LIMIT 5",
        )
        .unwrap();
        let v = b.vector.unwrap();
        assert_eq!(v.range, Some(2.0));
        assert_eq!(v.k, Some(5));
    }

    #[test]
    fn inconsistent_range_and_order_rejected() {
        let err = bind(
            "SELECT id FROM images WHERE L2Distance(embedding, [1.0, 1.0]) < 2.0 \
             ORDER BY L2Distance(embedding, [0.0, 0.0]) LIMIT 5",
        )
        .unwrap_err();
        assert!(err.to_string().contains("different query vectors"));
    }

    #[test]
    fn vector_query_requires_limit_or_range() {
        let err = bind("SELECT id FROM images ORDER BY L2Distance(embedding, [0.0, 0.0])")
            .unwrap_err();
        assert!(err.to_string().contains("LIMIT"));
    }

    #[test]
    fn star_expands_schema_plus_alias() {
        let b = bind(
            "SELECT * FROM images ORDER BY L2Distance(embedding, [0.0, 0.0]) AS d LIMIT 1",
        )
        .unwrap();
        assert_eq!(b.projection.len(), 6); // 5 columns + d
        assert_eq!(b.projection[5], ProjItem::Distance("d".into()));
    }

    #[test]
    fn scalar_order_by() {
        let b = bind("SELECT id FROM images ORDER BY score DESC LIMIT 3").unwrap();
        assert!(b.vector.is_none());
        assert_eq!(b.scalar_order, Some(("score".into(), false)));
    }

    #[test]
    fn comparison_bind_openness() {
        let b = bind("SELECT id FROM images WHERE id > 5 AND score <= 0.5").unwrap();
        match &b.predicate {
            Predicate::And(parts) => {
                assert!(matches!(
                    &parts[0],
                    Predicate::Range { lo: Some(Value::UInt64(5)), lo_open: true, .. }
                ));
                assert!(matches!(
                    &parts[1],
                    Predicate::Range { hi: Some(Value::Float64(_)), hi_open: false, .. }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reversed_literal_comparison_mirrors() {
        let b = bind("SELECT id FROM images WHERE 5 < id").unwrap();
        assert!(matches!(
            b.predicate,
            Predicate::Range { lo: Some(Value::UInt64(5)), lo_open: true, .. }
        ));
    }

    #[test]
    fn regex_in_and_between() {
        let b = bind(
            "SELECT id FROM images WHERE label REGEXP '^a' AND id BETWEEN 1 AND 5 \
             AND label IN ('x', 'y')",
        )
        .unwrap();
        let Predicate::And(parts) = b.predicate else { panic!() };
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[0], Predicate::RegexMatch(..)));
        assert!(matches!(parts[1], Predicate::Range { .. }));
        assert!(matches!(parts[2], Predicate::In(..)));
    }

    #[test]
    fn unknown_columns_rejected() {
        assert!(bind("SELECT nope FROM images LIMIT 1").is_err());
        assert!(bind("SELECT id FROM images WHERE nope = 1").is_err());
        assert!(bind("SELECT id FROM images ORDER BY L2Distance(nope, [1.0, 2.0]) LIMIT 1")
            .is_err());
    }

    #[test]
    fn dimension_mismatch_in_query_vector() {
        let err = bind(
            "SELECT id FROM images ORDER BY L2Distance(embedding, [1.0, 2.0, 3.0]) LIMIT 1",
        )
        .unwrap_err();
        assert!(matches!(err, BhError::DimensionMismatch { expected: 2, got: 3 }));
    }

    #[test]
    fn datetime_parsing() {
        assert_eq!(parse_datetime("1970-01-01").unwrap(), 0);
        assert_eq!(parse_datetime("1970-01-02 00:00:01").unwrap(), 86_401);
        // Known epoch: 2024-10-10 10:00:00 UTC = 1728554400.
        assert_eq!(parse_datetime("2024-10-10 10:00:00").unwrap(), 1_728_554_400);
        assert!(parse_datetime("not-a-date").is_err());
        assert!(parse_datetime("2024-13-01").is_err());
        assert!(parse_datetime("2024-01-01 25:00:00").is_err());
    }

    #[test]
    fn literal_coercions() {
        assert_eq!(
            literal_to_value(&Lit::Int(5), ColumnType::Float64).unwrap(),
            Value::Float64(5.0)
        );
        assert!(literal_to_value(&Lit::Int(-1), ColumnType::UInt64).is_err());
        assert!(literal_to_value(&Lit::Str("x".into()), ColumnType::UInt64).is_err());
        assert_eq!(
            literal_to_value(&Lit::Array(vec![1.0]), ColumnType::Vector(0)).unwrap(),
            Value::Vector(vec![1.0])
        );
        assert!(literal_to_value(&Lit::Array(vec![1.0]), ColumnType::Vector(2)).is_err());
    }

    #[test]
    fn order_by_desc_distance_rejected() {
        let err = bind(
            "SELECT id FROM images ORDER BY L2Distance(embedding, [0.0, 0.0]) DESC LIMIT 5",
        )
        .unwrap_err();
        assert!(err.to_string().contains("DESC"));
    }
}
