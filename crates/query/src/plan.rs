//! Logical plans and rule-based optimization (§II-C).
//!
//! The logical plan is a small operator tree used for three purposes: EXPLAIN
//! output, a place for the rule-based rewrites to act, and the carrier of the
//! **column pruning** result the executor consumes. Three rules from the
//! paper are implemented:
//!
//! * **distance top-k pushdown** — the TopK bound moves into the ANN scan so
//!   every segment searches with `k` instead of materializing everything;
//! * **distance range-filter pushdown** — a `Distance(…) < r` constraint
//!   moves into the ANN scan as a range bound;
//! * **vector column pruning** — the raw embedding column is dropped from
//!   the scan's column set unless the projection asks for it (the index
//!   holds what search needs; refine re-reads cells on demand).

use crate::bind::{BoundSelect, ProjItem};
use bh_storage::schema::TableSchema;
use std::fmt;

/// Logical operators, leaf-last.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operator fields mirror their display form
pub enum LogicalPlan {
    Project {
        outputs: Vec<String>,
        input: Box<LogicalPlan>,
    },
    TopK {
        k: usize,
        input: Box<LogicalPlan>,
    },
    Filter {
        predicate: String,
        input: Box<LogicalPlan>,
    },
    Sort {
        key: String,
        asc: bool,
        input: Box<LogicalPlan>,
    },
    /// ANN scan over the vector index; `k`/`range` are populated by the
    /// pushdown rules.
    AnnScan {
        table: String,
        column: String,
        k: Option<usize>,
        range: Option<f32>,
    },
    /// Plain columnar scan.
    TableScan {
        table: String,
        columns: Vec<String>,
    },
}

impl LogicalPlan {
    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Project { outputs, input } => {
                writeln!(f, "{pad}Project [{}]", outputs.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::TopK { k, input } => {
                writeln!(f, "{pad}TopK k={k}")?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Filter { predicate, input } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Sort { key, asc, input } => {
                writeln!(f, "{pad}Sort {key} {}", if *asc { "ASC" } else { "DESC" })?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::AnnScan { table, column, k, range } => {
                write!(f, "{pad}AnnScan {table}.{column}")?;
                if let Some(k) = k {
                    write!(f, " k={k}")?;
                }
                if let Some(r) = range {
                    write!(f, " range<={r}")?;
                }
                writeln!(f)
            }
            LogicalPlan::TableScan { table, columns } => {
                writeln!(f, "{pad}TableScan {table} [{}]", columns.join(", "))
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// The planner's output: optimized plan, applied-rule log, and the pruned
/// column set the executor must read.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSelect {
    /// The optimized operator tree (EXPLAIN output).
    pub logical: LogicalPlan,
    /// Names of the rewrite rules that fired.
    pub rules_applied: Vec<String>,
    /// Scalar columns the executor needs (predicate + projection), after
    /// vector column pruning.
    pub columns_needed: Vec<String>,
    /// True when the projection explicitly asks for the raw vector column.
    pub needs_raw_vectors: bool,
}

/// Build the naive plan, then apply the rule-based optimizations.
pub fn plan_select(schema: &TableSchema, bound: &BoundSelect) -> PlannedSelect {
    let mut rules = Vec::new();

    // Columns referenced anywhere.
    let mut columns: Vec<String> = bound.predicate.referenced_columns();
    for item in &bound.projection {
        if let ProjItem::Column(c) = item {
            if !columns.contains(c) {
                columns.push(c.clone());
            }
        }
    }
    if let Some((c, _)) = &bound.scalar_order {
        if !columns.contains(c) {
            columns.push(c.clone());
        }
    }

    // Vector column pruning: drop the embedding column from the scan set
    // unless it is explicitly projected.
    let mut needs_raw_vectors = false;
    if let Some(v) = &bound.vector {
        let projected = bound
            .projection
            .iter()
            .any(|p| matches!(p, ProjItem::Column(c) if c == &v.column));
        needs_raw_vectors = projected;
        if !projected {
            let before = columns.len();
            columns.retain(|c| c != &v.column);
            if columns.len() != before || schema.column(&v.column).is_some() {
                rules.push("vector-column-pruning".to_string());
            }
        }
    }

    // Naive tree: Scan → Filter → Sort/TopK → Project.
    let scan: LogicalPlan = match &bound.vector {
        Some(v) => {
            let mut ann = LogicalPlan::AnnScan {
                table: bound.table.clone(),
                column: v.column.clone(),
                k: None,
                range: None,
            };
            // Distance top-k pushdown.
            if let Some(k) = v.k {
                if let LogicalPlan::AnnScan { k: ann_k, .. } = &mut ann {
                    *ann_k = Some(k);
                }
                rules.push("distance-topk-pushdown".to_string());
            }
            // Distance range pushdown.
            if let Some(r) = v.range {
                if let LogicalPlan::AnnScan { range, .. } = &mut ann {
                    *range = Some(r);
                }
                rules.push("distance-range-pushdown".to_string());
            }
            ann
        }
        None => LogicalPlan::TableScan { table: bound.table.clone(), columns: columns.clone() },
    };

    let mut plan = scan;
    if !matches!(bound.predicate, bh_storage::predicate::Predicate::True) {
        plan = LogicalPlan::Filter {
            predicate: bound.predicate.to_string(),
            input: Box::new(plan),
        };
    }
    if let Some((key, asc)) = &bound.scalar_order {
        plan = LogicalPlan::Sort { key: key.clone(), asc: *asc, input: Box::new(plan) };
    }
    if let Some(k) = bound.limit {
        plan = LogicalPlan::TopK { k, input: Box::new(plan) };
    }
    plan = LogicalPlan::Project {
        outputs: bound.projection.iter().map(|p| p.name().to_string()).collect(),
        input: Box::new(plan),
    };

    PlannedSelect { logical: plan, rules_applied: rules, columns_needed: columns, needs_raw_vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use bh_sql::{parse_statement, Statement};
    use bh_storage::value::ColumnType;
    use bh_vector::{IndexKind, Metric};

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(2))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 2, Metric::L2)
    }

    fn plan(sql: &str) -> PlannedSelect {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = bind_select(&schema(), &sel).unwrap();
        plan_select(&schema(), &bound)
    }

    #[test]
    fn hybrid_plan_applies_all_rules() {
        let p = plan(
            "SELECT id FROM t WHERE label = 'a' AND L2Distance(emb, [0.0, 0.0]) < 3.0 \
             ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 7",
        );
        assert!(p.rules_applied.contains(&"distance-topk-pushdown".to_string()));
        assert!(p.rules_applied.contains(&"distance-range-pushdown".to_string()));
        assert!(p.rules_applied.contains(&"vector-column-pruning".to_string()));
        // Vector column pruned from the scan column set.
        assert_eq!(p.columns_needed, vec!["label".to_string(), "id".to_string()]);
        assert!(!p.needs_raw_vectors);
        // The pushed-down k and range appear on the AnnScan leaf.
        let text = p.logical.to_string();
        assert!(text.contains("AnnScan t.emb k=7 range<=3"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("TopK k=7"), "{text}");
    }

    #[test]
    fn projecting_the_vector_disables_pruning() {
        let p = plan("SELECT emb FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 2");
        assert!(p.needs_raw_vectors);
        assert!(p.columns_needed.contains(&"emb".to_string()));
        assert!(!p.rules_applied.contains(&"vector-column-pruning".to_string()));
    }

    #[test]
    fn scalar_query_gets_table_scan() {
        let p = plan("SELECT id FROM t WHERE label = 'x' ORDER BY id LIMIT 5");
        let text = p.logical.to_string();
        assert!(text.contains("TableScan"), "{text}");
        assert!(text.contains("Sort id ASC"), "{text}");
        assert!(!text.contains("AnnScan"));
        assert_eq!(p.columns_needed, vec!["label".to_string(), "id".to_string()]);
    }

    #[test]
    fn no_filter_node_for_true_predicate() {
        let p = plan("SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 1");
        assert!(!p.logical.to_string().contains("Filter"));
    }

    #[test]
    fn explain_is_indented_tree() {
        let p = plan("SELECT id FROM t WHERE label = 'a' ORDER BY L2Distance(emb, [0.0, 0.0]) LIMIT 1");
        let text = p.logical.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Project"));
        assert!(lines[1].starts_with("  "), "{text}");
    }
}
