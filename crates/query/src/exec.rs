//! The distributed hybrid-query executor (§II-C "Plan execution", §IV).
//!
//! Pipeline per SELECT:
//!
//! 1. **Bind** the AST against the schema (scalar predicate + vector query).
//! 2. **Plan**: plan-cache lookup by parameterized signature; on miss either
//!    the short-circuit fast path (trivial shapes) or the full rule pass,
//!    then the cost-based strategy choice among Plans A/B/C/D.
//! 3. **Schedule**: segment selection with scalar + semantic pruning and an
//!    adaptive reserve.
//! 4. **Execute** per segment on the owning worker (through the VW, which
//!    adds serving and query-level retry), including the refine pass for
//!    quantized indexes and adaptive reserve expansion when filtered results
//!    come up short.
//! 5. **Merge** partial top-k results globally, then **materialize** the
//!    projection through block-granular cell reads.

use crate::bind::{bind_select, BoundSelect, ProjItem, VectorQuery};
use crate::cost::{CostInputs, CostParams, Strategy};
use crate::plan::plan_select;
use crate::plancache::{is_short_circuitable, plan_signature, CachedPlan, PlanCache};
use crate::result::ResultSet;
use bh_cluster::scheduler::{select_segments, PruneConfig, SegmentSelection};
use bh_cluster::vw::VirtualWarehouse;
use bh_cluster::worker::Worker;
use bh_common::{
    BhError, Bitset, MetricsRegistry, Result, SegmentId, SharedBound, SpanId, StealingCursor,
    Stopwatch, TopK,
};
use bh_sql::ast::SelectStmt;
use bh_storage::predicate::Predicate;
use bh_storage::segment::SegmentMeta;
use bh_storage::table::TableStore;
use bh_storage::value::Value;
use bh_vector::{Neighbor, SearchParams};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-query execution knobs.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Index search knobs (ef_search / nprobe).
    pub search: SearchParams,
    /// Refine amplification σ (> 1): candidates re-ranked with exact
    /// distances when the index is quantized.
    pub sigma: usize,
    /// Use the cost-based optimizer; when off, `default_strategy` is used
    /// for filtered searches (the paper's CBO-off baseline).
    pub enable_cbo: bool,
    /// Bypass the CBO with a specific strategy (tests, ablations).
    pub forced_strategy: Option<Strategy>,
    /// Strategy used for filtered searches when the CBO is disabled.
    pub default_strategy: Strategy,
    /// Use the parameterized plan cache.
    pub enable_plan_cache: bool,
    /// Skip full optimization for trivially-shaped queries.
    pub enable_short_circuit: bool,
    /// Scheduling-time segment pruning configuration.
    pub prune: PruneConfig,
    /// Segments pulled from the reserve per adaptive expansion.
    pub adaptive_batch: usize,
    /// Maximum worker threads searching segments of one query concurrently
    /// (the paper's intra-query fan-out, Fig. 9–12). `1` disables the
    /// fan-out; the default is the machine's available parallelism.
    pub intra_query_parallelism: usize,
    /// Share a per-query atomic k-th-distance bound across the segments of a
    /// batched query ([`QueryEngine::execute_batch`]) so segments searched
    /// later can skip candidates that cannot enter the final top-k. Exact
    /// (DESIGN.md §7); only applies to pure top-k queries (`k` set, no
    /// distance range).
    pub share_bound: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            search: SearchParams::default(),
            sigma: 2,
            enable_cbo: true,
            forced_strategy: None,
            default_strategy: Strategy::PreFilter,
            enable_plan_cache: true,
            enable_short_circuit: true,
            prune: PruneConfig::default(),
            adaptive_batch: 2,
            intra_query_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            share_bound: true,
        }
    }
}

/// Per-(segment, query) context threaded into [`QueryEngine`]'s segment
/// search by the batched path: the query's shared pruning bound (when
/// eligible) and the segment's index handle pinned once per batch task
/// (only when it was already memory-resident on a live owner, so pinning
/// never changes the residency evolution a sequential loop would see).
/// Sequential execution passes `SegCtx::default()` — no bound, no pin.
#[derive(Clone, Copy, Default)]
struct SegCtx<'a> {
    bound: Option<&'a SharedBound>,
    pin: Option<&'a (Arc<Worker>, Arc<dyn bh_vector::VectorIndex>)>,
    /// Explicit trace parent for spans opened on a fan-out thread (where the
    /// scheduling thread's span stack is not visible). `SpanId::NONE` (the
    /// default) means "parent from the current thread's span stack".
    trace_parent: Option<SpanId>,
}

/// Per-statement progress of a batch ([`QueryEngine::execute_batch`]):
/// mirrors the locals of the sequential `exec_vector` loop, plus the
/// query's shared pruning bound when it is eligible for one.
struct BatchQueryState<'q> {
    sel: &'q BoundSelect,
    v: &'q VectorQuery,
    plan: &'q CachedPlan,
    selection: SegmentSelection,
    pending: Vec<Arc<SegmentMeta>>,
    global: TopK<(SegmentId, u32)>,
    k: usize,
    /// Shared across *identical* statements in the batch (same column, k,
    /// query vector, and predicate), so duplicate queries tighten one
    /// common bound instead of each rediscovering it.
    bound: Option<Arc<SharedBound>>,
    done: bool,
}

/// The query engine: planner state (cost constants, plan cache) shared
/// across queries of one database.
pub struct QueryEngine {
    cost: CostParams,
    plan_cache: PlanCache,
    metrics: MetricsRegistry,
}

impl QueryEngine {
    /// An engine with default cost constants and an empty plan cache.
    pub fn new(metrics: MetricsRegistry) -> Self {
        // Record which distance-kernel tier runtime detection selected, once
        // per engine (`kernel.tier.avx2|neon|scalar` = 1).
        let tier = bh_vector::distance::KernelTier::current();
        metrics.gauge(&format!("kernel.tier.{}", tier.name())).set(1);
        Self { cost: CostParams::default(), plan_cache: PlanCache::new(), metrics }
    }

    /// Replace the cost-model constants (e.g. with calibrated ones).
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// The shared parameterized plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The cost-model constants in use.
    pub fn cost_params(&self) -> &CostParams {
        &self.cost
    }

    /// Execute a parsed SELECT.
    pub fn execute_select(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        stmt: &SelectStmt,
    ) -> Result<ResultSet> {
        let t = Stopwatch::start();
        let bound = {
            let _span = self.metrics.tracer().span("bind");
            bind_select(table.schema(), stmt)?
        };
        self.metrics.counter("query.bind_ns").add(t.elapsed_nanos());
        self.execute_bound(table, vw, opts, &bound)
    }

    /// Produce an EXPLAIN report for a SELECT: the optimized logical plan,
    /// the rules applied, the CBO's strategy choice, and the per-plan cost
    /// estimates that drove it.
    pub fn explain_select(
        &self,
        table: &TableStore,
        opts: &QueryOptions,
        stmt: &SelectStmt,
    ) -> Result<String> {
        let bound = bind_select(table.schema(), stmt)?;
        let planned = plan_select(table.schema(), &bound);
        let strategy = self.choose_strategy(table, opts, &bound)?;
        let mut out = String::new();
        out.push_str(&planned.logical.to_string());
        out.push_str(&format!(
            "rules applied: {}\n",
            if planned.rules_applied.is_empty() {
                "(none)".to_string()
            } else {
                planned.rules_applied.join(", ")
            }
        ));
        out.push_str(&format!(
            "columns read: [{}]\n",
            planned.columns_needed.join(", ")
        ));
        if let Some(v) = &bound.vector {
            let inputs = self.cost_inputs(table, opts, v, &bound);
            let (n, s, beta) = (inputs.n, inputs.s, inputs.beta);
            out.push_str(&format!(
                "estimates: n={n} selectivity={s:.4} beta={beta:.5}\n"
            ));
            for (plan, cost) in self.cost.all_costs(&inputs) {
                out.push_str(&format!("  cost[{}] = {cost:.1}\n", plan.name()));
            }
        }
        out.push_str(&format!("strategy: {}\n", strategy.name()));
        Ok(out)
    }

    /// Execute an already-bound SELECT.
    ///
    /// Queries run against a snapshot of the segment set; a background
    /// compaction can garbage-collect a segment (and its blobs) mid-query.
    /// Per §II-E the system retries at the query level: the retry takes a
    /// fresh snapshot, which the new merged segments serve.
    pub fn execute_bound(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
    ) -> Result<ResultSet> {
        let t = Stopwatch::start();
        let planned = {
            let mut span = self.metrics.tracer().span("plan");
            let planned = self.plan_phase(table, opts, bound)?;
            span.attr("strategy", planned.strategy.name());
            planned
        };
        self.note_plan(planned.strategy);
        self.metrics.counter("query.plan_ns").add(t.elapsed_nanos());

        let t = Stopwatch::start();
        let mut exec_span = self.metrics.tracer().span("exec");
        let mut attempts = 0;
        let out = loop {
            let result = match &bound.vector {
                Some(v) => self.exec_vector(table, vw, opts, bound, v, &planned),
                None => self.exec_scalar(table, vw, opts, bound, &planned),
            };
            match result {
                Err(e) if is_snapshot_race(&e) && attempts < 3 => {
                    attempts += 1;
                    self.metrics.counter("query.snapshot_retries").inc();
                    continue;
                }
                other => break other,
            }
        };
        if attempts > 0 {
            exec_span.attr("snapshot_retries", attempts as u64);
        }
        if let Ok(rs) = &out {
            exec_span.attr("rows", rs.rows.len());
        }
        drop(exec_span);
        self.metrics.counter("query.exec_ns").add(t.elapsed_nanos());
        self.metrics.counter("query.executed").inc();
        out
    }

    /// Convenience wrapper over [`Self::execute_batch`]: bind and run a
    /// batch of parsed SELECTs, returning results in statement order.
    pub fn execute_select_batch(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        stmts: &[SelectStmt],
    ) -> Result<Vec<ResultSet>> {
        let t = Stopwatch::start();
        let batch: Vec<BoundSelect> = stmts
            .iter()
            .map(|s| bind_select(table.schema(), s))
            .collect::<Result<_>>()?;
        self.metrics.counter("query.bind_ns").add(t.elapsed_nanos());
        self.execute_batch(table, vw, opts, &batch)
    }

    /// Execute a batch of bound SELECTs as one scheduling unit (DESIGN.md
    /// §7). Results come back in batch order and are bit-identical to
    /// running [`Self::execute_bound`] on each statement sequentially.
    ///
    /// The segment snapshot is taken once for the whole batch. Each round
    /// fans out one work-stealing task per distinct pending segment; a task
    /// pins the segment's index handle once (only if already resident on a
    /// live owner) and then runs every query that scheduled the segment *in
    /// batch order*, so per-segment side effects (warming, serving
    /// upgrades) replay exactly as the sequential loop would. Pure top-k
    /// queries additionally carry a [`SharedBound`]: segments searched
    /// later skip candidates that provably cannot enter the final top-k.
    pub fn execute_batch(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        batch: &[BoundSelect],
    ) -> Result<Vec<ResultSet>> {
        self.metrics.counter("query.batch_size").add(batch.len() as u64);
        let t = Stopwatch::start();
        let plans: Vec<CachedPlan> = {
            let _span = self.metrics.tracer().span("plan");
            batch
                .iter()
                .map(|b| self.plan_phase(table, opts, b))
                .collect::<Result<_>>()?
        };
        for plan in &plans {
            self.note_plan(plan.strategy);
        }
        self.metrics.counter("query.plan_ns").add(t.elapsed_nanos());

        let t = Stopwatch::start();
        let mut exec_span = self.metrics.tracer().span("exec");
        exec_span.attr("batch", batch.len());
        let mut attempts = 0;
        let out = loop {
            match self.exec_batch_inner(table, vw, opts, batch, &plans) {
                Err(e) if is_snapshot_race(&e) && attempts < 3 => {
                    attempts += 1;
                    self.metrics.counter("query.snapshot_retries").inc();
                    continue;
                }
                other => break other,
            }
        };
        if attempts > 0 {
            exec_span.attr("snapshot_retries", attempts as u64);
        }
        drop(exec_span);
        self.metrics.counter("query.exec_ns").add(t.elapsed_nanos());
        self.metrics.counter("query.executed").add(batch.len() as u64);
        out
    }

    fn exec_batch_inner(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        batch: &[BoundSelect],
        plans: &[CachedPlan],
    ) -> Result<Vec<ResultSet>> {
        let segments = table.segments();
        let total_rows: usize = segments.iter().map(|m| m.row_count).sum();

        let mut results: Vec<Option<ResultSet>> = (0..batch.len()).map(|_| None).collect();
        let mut states: Vec<Option<BatchQueryState<'_>>> = Vec::with_capacity(batch.len());
        // Cross-query bound dedup: identical pure top-k statements (same
        // column, k, query bits, predicate) share ONE bound. The key must
        // include the predicate — an unfiltered query's kth distance would
        // unsoundly prune a filtered query's sparser candidate set.
        type BoundKey = (String, usize, Vec<u32>, String);
        let mut bound_pool: BTreeMap<BoundKey, Arc<SharedBound>> = BTreeMap::new();
        for (i, sel) in batch.iter().enumerate() {
            let Some(v) = &sel.vector else {
                // Scalar statements don't participate in the vector fan-out.
                results[i] = Some(self.exec_scalar(table, vw, opts, sel, &plans[i])?);
                states.push(None);
                continue;
            };
            let selection =
                select_segments(&segments, &sel.predicate, Some(&v.query), &opts.prune);
            self.metrics
                .counter("query.segments_pruned")
                .add(selection.scalar_pruned as u64);
            let k = v.k.unwrap_or(total_rows.max(1));
            // The bound is exact only for pure top-k queries: a range query
            // must return everything within the range, and an unbounded k
            // never prunes anyway.
            let share = opts.share_bound && v.k.is_some() && v.range.is_none();
            let pending = selection.scheduled.clone();
            let bound = share.then(|| {
                let key: BoundKey = (
                    v.column.clone(),
                    k,
                    v.query.iter().map(|f| f.to_bits()).collect(),
                    format!("{:?}", sel.predicate),
                );
                Arc::clone(
                    bound_pool.entry(key).or_insert_with(|| Arc::new(SharedBound::new())),
                )
            });
            states.push(Some(BatchQueryState {
                sel,
                v,
                plan: &plans[i],
                selection,
                pending,
                global: TopK::new(k),
                k,
                bound,
                done: false,
            }));
        }

        loop {
            // Distinct segments still pending for any live query, each with
            // the (batch-ordered) list of queries that scheduled it.
            let mut seg_tasks: Vec<(Arc<SegmentMeta>, Vec<usize>)> = Vec::new();
            let mut seg_slot: BTreeMap<SegmentId, usize> = BTreeMap::new();
            for (qi, st) in states.iter().enumerate() {
                let Some(st) = st.as_ref() else { continue };
                if st.done {
                    continue;
                }
                for meta in &st.pending {
                    let slot = *seg_slot.entry(meta.id).or_insert_with(|| {
                        seg_tasks.push((meta.clone(), Vec::new()));
                        seg_tasks.len() - 1
                    });
                    seg_tasks[slot].1.push(qi);
                }
            }
            if seg_tasks.is_empty() {
                break;
            }
            // Overlapped cold-path I/O: before fanning out, start every
            // scheduled segment's index transfer (reactor-backed stores
            // only) so the blob fetches run concurrently and each task
            // finds its transfer already in flight instead of paying the
            // full remote latency serially.
            let mut prefetched = 0u64;
            for (meta, _) in &seg_tasks {
                if matches!(vw.prefetch_index(meta), Ok(true)) {
                    prefetched += 1;
                }
            }
            if prefetched > 0 {
                self.metrics.counter("query.index_prefetches").add(prefetched);
            }
            let per_task = self.run_segment_tasks(table, vw, opts, &states, &seg_tasks)?;

            // Move task outputs into a (segment, query)-keyed map so each
            // query can merge in its own pending order.
            let mut by_seg_query: BTreeMap<(SegmentId, usize), Result<Vec<Neighbor>>> =
                BTreeMap::new();
            for ((meta, _), task_out) in seg_tasks.iter().zip(per_task) {
                for (qi, r) in task_out {
                    by_seg_query.insert((meta.id, qi), r);
                }
            }
            for (qi, st) in states.iter_mut().enumerate() {
                let Some(st) = st.as_mut() else { continue };
                if st.done {
                    continue;
                }
                for meta in &st.pending {
                    // First error in (batch, pending) order wins, matching
                    // the deterministic error the sequential loop reports.
                    match by_seg_query.remove(&(meta.id, qi)) {
                        Some(Ok(hits)) => {
                            for nb in hits {
                                st.global.push(nb.distance, (meta.id, nb.id as u32));
                            }
                        }
                        Some(Err(e)) => return Err(e),
                        None => {
                            return Err(BhError::Internal(
                                "batched segment search missing a result".into(),
                            ))
                        }
                    }
                }
                if st.global.len() >= st.k || st.selection.exhausted() {
                    st.done = true;
                    st.pending.clear();
                    continue;
                }
                // Adaptive runtime adjustment (§IV-B), per query.
                st.pending = st.selection.expand(opts.adaptive_batch.max(1));
                if st.pending.is_empty() {
                    st.done = true;
                } else {
                    self.metrics.counter("query.adaptive_expansions").inc();
                }
            }
        }

        // Skips accumulate on the (possibly shared) bound: count each
        // distinct bound once, not once per statement that aliases it.
        let mut counted: Vec<*const SharedBound> = Vec::new();
        for (qi, st) in states.into_iter().enumerate() {
            let Some(st) = st else { continue };
            if let Some(b) = &st.bound {
                let p = Arc::as_ptr(b);
                if !counted.contains(&p) {
                    counted.push(p);
                    self.metrics.counter("query.bound_skips").add(b.skips());
                }
            }
            let mut hits = st.global.into_sorted();
            if let Some(r) = st.v.range {
                hits.retain(|s| s.distance <= r);
            }
            if let Some(limit) = st.sel.limit {
                hits.truncate(limit);
            }
            let hit_list: Vec<(SegmentId, u32, f32)> =
                hits.into_iter().map(|s| (s.item.0, s.item.1, s.distance)).collect();
            results[qi] = Some(self.materialize(table, vw, st.sel, st.plan, &hit_list)?);
        }
        results
            .into_iter()
            .map(|r| {
                r.ok_or_else(|| {
                    BhError::Internal("batch statement produced no result".into())
                })
            })
            .collect()
    }

    /// One round of the batched fan-out: segment-major tasks over the
    /// work-stealing pool. Returns, per task, `(query index, result)` pairs.
    /// A panicked worker thread becomes `BhError::Internal`, like
    /// [`Self::search_segments_parallel`].
    fn run_segment_tasks(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        states: &[Option<BatchQueryState<'_>>],
        seg_tasks: &[(Arc<SegmentMeta>, Vec<usize>)],
    ) -> Result<Vec<Vec<(usize, Result<Vec<Neighbor>>)>>> {
        let par = opts.intra_query_parallelism.max(1).min(seg_tasks.len());
        // Fan-out threads cannot see this thread's span stack; capture the
        // parent span here and attach every task span to it explicitly.
        let trace_parent = self.metrics.tracer().current();
        if par <= 1 {
            return Ok(seg_tasks
                .iter()
                .map(|(meta, qis)| {
                    self.run_segment_task(table, vw, opts, states, meta, qis, trace_parent)
                })
                .collect());
        }
        self.metrics.counter("query.parallel_segments").add(seg_tasks.len() as u64);
        self.metrics.counter("query.fanout_batches").inc();
        let cursor = StealingCursor::new();
        let merged: Vec<Option<Vec<(usize, Result<Vec<Neighbor>>)>>> =
            std::thread::scope(|scope| {
                let cursor = &cursor;
                let handles: Vec<_> = (0..par)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            while let Some(i) = cursor.claim(seg_tasks.len()) {
                                let (meta, qis) = &seg_tasks[i];
                                local.push((
                                    i,
                                    self.run_segment_task(
                                        table,
                                        vw,
                                        opts,
                                        states,
                                        meta,
                                        qis,
                                        trace_parent,
                                    ),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                let mut merged: Vec<Option<Vec<(usize, Result<Vec<Neighbor>>)>>> =
                    (0..seg_tasks.len()).map(|_| None).collect();
                let mut panicked = false;
                for h in handles {
                    match h.join() {
                        Ok(local) => {
                            for (i, r) in local {
                                merged[i] = Some(r);
                            }
                        }
                        Err(_) => panicked = true,
                    }
                }
                if panicked {
                    merged.clear();
                }
                merged
            });
        if merged.is_empty() {
            return Err(BhError::Internal("segment search worker panicked".into()));
        }
        merged
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| {
                    BhError::Internal("segment search aborted by peer failure".into())
                })
            })
            .collect()
    }

    /// One segment's task: pin the index handle once (only when already
    /// memory-resident on a live owner — pinning must never force a load,
    /// or the residency evolution would diverge from the sequential loop),
    /// then run every assigned query against this segment in batch order.
    #[allow(clippy::too_many_arguments)]
    fn run_segment_task(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        states: &[Option<BatchQueryState<'_>>],
        meta: &Arc<SegmentMeta>,
        qis: &[usize],
        trace_parent: SpanId,
    ) -> Vec<(usize, Result<Vec<Neighbor>>)> {
        let mut task_span = self.metrics.tracer().span_under(trace_parent, "segment.task");
        task_span.attr("segment", meta.id.raw());
        task_span.attr("queries", qis.len());
        let pin: Option<(Arc<Worker>, Arc<dyn bh_vector::VectorIndex>)> = (|| {
            let (_, owner) = vw.owner_of(meta).ok()?;
            if !owner.is_alive() || !owner.index_resident(meta) {
                return None;
            }
            let idx = owner.index_handle(meta).ok()??;
            Some((owner, idx))
        })();
        qis.iter()
            .map(|&qi| {
                let Some(st) = states.get(qi).and_then(|s| s.as_ref()) else {
                    return (
                        qi,
                        Err(BhError::Internal(
                            "segment task assigned to a scalar query".into(),
                        )),
                    );
                };
                // `task_span` is still open on this thread, so the segment
                // search span parents from the TLS stack.
                let ctx =
                    SegCtx { bound: st.bound.as_deref(), pin: pin.as_ref(), trace_parent: None };
                let r = self.search_one_segment(
                    table,
                    vw,
                    opts,
                    st.sel,
                    st.v,
                    st.plan,
                    meta,
                    st.k,
                    ctx,
                );
                (qi, r)
            })
            .collect()
    }

    // -------------------------------------------------------------- planning

    /// Per-strategy chosen-plan counter, once per executed statement (not
    /// per segment). Literal names so the metric-registry lint (rule 9)
    /// covers them.
    fn note_plan(&self, strategy: Strategy) {
        match strategy {
            Strategy::BruteForce => self.metrics.counter("query.plan.brute_force").inc(),
            Strategy::PreFilter => self.metrics.counter("query.plan.pre_filter").inc(),
            Strategy::PostFilter => self.metrics.counter("query.plan.post_filter").inc(),
            Strategy::FilteredTraversal => {
                self.metrics.counter("query.plan.filtered_traversal").inc()
            }
        }
    }

    fn plan_phase(
        &self,
        table: &TableStore,
        opts: &QueryOptions,
        bound: &BoundSelect,
    ) -> Result<CachedPlan> {
        if opts.enable_plan_cache {
            // The strategy choice depends on the predicate's selectivity, and
            // selectivity is a *parameter* (filter constants change per
            // query). The paper's "extended plan matching algorithm" handles
            // exactly this; we fold a coarse selectivity band into the
            // signature so one shape can cache distinct per-band strategies.
            let mut sig = plan_signature(bound);
            if bound.vector.is_some() && !matches!(bound.predicate, Predicate::True) {
                let s = bound.predicate.estimate_selectivity(&table.sketch());
                sig.push_str(&format!("|sband:{}", selectivity_band(s)));
            }
            if let Some(mut cached) = self.plan_cache.get(&sig) {
                self.metrics.counter("query.plan_cache_hits").inc();
                // A forced strategy (tests, EXPLAIN experiments) overrides
                // whatever the cache decided.
                if let Some(forced) = opts.forced_strategy {
                    cached.strategy = forced;
                }
                return Ok(cached);
            }
            let plan = self.plan_uncached(table, opts, bound)?;
            self.plan_cache.put(sig, plan.clone());
            return Ok(plan);
        }
        self.plan_uncached(table, opts, bound)
    }

    fn plan_uncached(
        &self,
        table: &TableStore,
        opts: &QueryOptions,
        bound: &BoundSelect,
    ) -> Result<CachedPlan> {
        let (columns_needed, needs_raw_vectors) =
            if opts.enable_short_circuit && is_short_circuitable(bound) {
                // Fast path: skip logical-plan construction and rule matching.
                self.metrics.counter("query.short_circuit").inc();
                let mut cols = bound.predicate.referenced_columns();
                for p in &bound.projection {
                    if let ProjItem::Column(c) = p {
                        if !cols.contains(c) {
                            cols.push(c.clone());
                        }
                    }
                }
                let needs_raw = bound
                    .vector
                    .as_ref()
                    .map(|v| cols.contains(&v.column))
                    .unwrap_or(false);
                if let Some(v) = &bound.vector {
                    if !needs_raw {
                        cols.retain(|c| c != &v.column);
                    }
                }
                (cols, needs_raw)
            } else {
                let planned = plan_select(table.schema(), bound);
                self.metrics
                    .counter("query.rules_applied")
                    .add(planned.rules_applied.len() as u64);
                (planned.columns_needed, planned.needs_raw_vectors)
            };

        let strategy = self.choose_strategy(table, opts, bound)?;
        let selectivity = match &bound.vector {
            Some(_) if !matches!(bound.predicate, Predicate::True) => {
                Some(bound.predicate.estimate_selectivity(&table.sketch()) as f32)
            }
            _ => None,
        };
        Ok(CachedPlan { strategy, columns_needed, needs_raw_vectors, selectivity })
    }

    fn choose_strategy(
        &self,
        table: &TableStore,
        opts: &QueryOptions,
        bound: &BoundSelect,
    ) -> Result<Strategy> {
        if let Some(forced) = opts.forced_strategy {
            return Ok(forced);
        }
        let Some(v) = &bound.vector else {
            // Scalar-only queries have no ANN strategy to pick.
            return Ok(Strategy::BruteForce);
        };
        if !opts.enable_cbo {
            return Ok(if matches!(bound.predicate, Predicate::True) {
                // Without a filter even the CBO-off baseline runs plain ANN.
                Strategy::PostFilter
            } else {
                opts.default_strategy
            });
        }
        let inputs = self.cost_inputs(table, opts, v, bound);
        let choice = self.cost.choose(&inputs);
        self.metrics.counter(&format!("query.cbo.{:?}", choice)).inc();
        Ok(choice)
    }

    /// Cost-model facts for one bound vector query against this table:
    /// visible rows, histogram selectivity, beam fraction and index shape.
    fn cost_inputs(
        &self,
        table: &TableStore,
        opts: &QueryOptions,
        v: &VectorQuery,
        bound: &BoundSelect,
    ) -> CostInputs {
        let n = table.visible_rows().max(1);
        let s = bound.predicate.estimate_selectivity(&table.sketch());
        let beta = (opts.search.ef_search as f64 / n as f64).clamp(1e-6, 1.0);
        let kind = table.schema().indexes.first().map(|d| d.spec.kind);
        CostInputs {
            n,
            s,
            beta,
            gamma: (beta * 2.0).min(1.0),
            k: v.k.unwrap_or(100),
            graph_index: matches!(
                kind,
                Some(bh_vector::IndexKind::Hnsw) | Some(bh_vector::IndexKind::HnswSq)
            ),
            quantized: matches!(
                kind,
                Some(bh_vector::IndexKind::HnswSq)
                    | Some(bh_vector::IndexKind::IvfPq)
                    | Some(bh_vector::IndexKind::IvfPqFs)
            ),
        }
    }

    // ------------------------------------------------------------ vector path

    fn exec_vector(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
        v: &VectorQuery,
        plan: &CachedPlan,
    ) -> Result<ResultSet> {
        let segments = table.segments();
        let mut selection =
            select_segments(&segments, &bound.predicate, Some(&v.query), &opts.prune);
        self.metrics
            .counter("query.segments_pruned")
            .add(selection.scalar_pruned as u64);

        let mut vec_span = self.metrics.tracer().span("exec.vector");
        vec_span.attr("segments_total", segments.len());
        vec_span.attr("segments_scheduled", selection.scheduled.len());
        vec_span.attr("segments_pruned", selection.scalar_pruned);
        let mut expansions = 0u64;
        let mut visited = 0u64;

        let total_rows: usize = segments.iter().map(|m| m.row_count).sum();
        let k = v.k.unwrap_or(total_rows.max(1));
        let mut global: TopK<(SegmentId, u32)> = TopK::new(k);

        let mut pending: Vec<Arc<SegmentMeta>> = selection.scheduled.clone();
        loop {
            // Fan the batch out across threads; per-segment hit lists come
            // back in `pending` order so the global merge is bit-identical
            // to the sequential path. Adaptive expansion below keeps its
            // barrier semantics: expand only after the whole batch merged.
            let per_segment =
                self.search_segments_parallel(table, vw, opts, bound, v, plan, &pending, k)?;
            visited += pending.len() as u64;
            for (meta, hits) in pending.iter().zip(per_segment) {
                for nb in hits {
                    global.push(nb.distance, (meta.id, nb.id as u32));
                }
            }
            if global.len() >= k || selection.exhausted() {
                break;
            }
            // Adaptive runtime adjustment (§IV-B): semantic pruning was too
            // aggressive for this query; pull reserve segments.
            pending = selection.expand(opts.adaptive_batch.max(1));
            if pending.is_empty() {
                break;
            }
            expansions += 1;
            self.metrics.counter("query.adaptive_expansions").inc();
        }
        vec_span.attr("segments_visited", visited);
        if expansions > 0 {
            vec_span.attr("adaptive_expansions", expansions);
        }
        vec_span.attr("candidates", global.len());
        drop(vec_span);

        let mut hits = global.into_sorted();
        if let Some(r) = v.range {
            hits.retain(|s| s.distance <= r);
        }
        if let Some(limit) = bound.limit {
            hits.truncate(limit);
        }
        let hit_list: Vec<(SegmentId, u32, f32)> =
            hits.into_iter().map(|s| (s.item.0, s.item.1, s.distance)).collect();
        self.materialize(table, vw, bound, plan, &hit_list)
    }

    /// Search one batch of scheduled segments, fanning out across up to
    /// `opts.intra_query_parallelism` threads (scoped, work-stealing by
    /// atomic cursor). Returns per-segment hit lists in `pending` order; a
    /// worker panic becomes `BhError::Internal` and the first per-segment
    /// `Err` (in `pending` order) is propagated, matching the sequential
    /// path's error behaviour.
    #[allow(clippy::too_many_arguments)]
    fn search_segments_parallel(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
        v: &VectorQuery,
        plan: &CachedPlan,
        pending: &[Arc<SegmentMeta>],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let par = opts.intra_query_parallelism.max(1).min(pending.len());
        if par <= 1 {
            return pending
                .iter()
                .map(|meta| {
                    self.search_one_segment(
                        table,
                        vw,
                        opts,
                        bound,
                        v,
                        plan,
                        meta,
                        k,
                        SegCtx::default(),
                    )
                })
                .collect();
        }
        self.metrics.counter("query.parallel_segments").add(pending.len() as u64);
        self.metrics.counter("query.fanout_batches").inc();
        // Worker threads have their own (empty) span stacks; parent their
        // segment spans to the span open on this scheduling thread.
        let trace_parent = self.metrics.tracer().current();
        let cursor = StealingCursor::new();
        let merged: Vec<Option<Result<Vec<Neighbor>>>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..par)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(i) = cursor.claim(pending.len()) {
                            let r = self.search_one_segment(
                                table,
                                vw,
                                opts,
                                bound,
                                v,
                                plan,
                                &pending[i],
                                k,
                                SegCtx { trace_parent: Some(trace_parent), ..SegCtx::default() },
                            );
                            let failed = r.is_err();
                            local.push((i, r));
                            if failed {
                                // This worker stops pulling segments; peers
                                // drain theirs and the error surfaces below.
                                break;
                            }
                        }
                        local
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<Vec<Neighbor>>>> =
                (0..pending.len()).map(|_| None).collect();
            let mut panicked = false;
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            merged[i] = Some(r);
                        }
                    }
                    Err(_) => panicked = true,
                }
            }
            if panicked {
                merged.clear();
            }
            merged
        });
        if merged.is_empty() {
            return Err(BhError::Internal("segment search worker panicked".into()));
        }
        // First error in pending order wins (deterministic, like sequential).
        let mut out = Vec::with_capacity(pending.len());
        for slot in merged {
            match slot {
                Some(Ok(hits)) => out.push(hits),
                Some(Err(e)) => return Err(e),
                // Unreached segments exist only when some worker errored.
                None => {
                    return Err(BhError::Internal(
                        "segment search aborted by peer failure".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Per-segment ANN search under the selected strategy. Returned neighbor
    /// ids are segment row offsets; distances are exact (refine applied for
    /// quantized indexes).
    #[allow(clippy::too_many_arguments)]
    fn search_one_segment(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
        v: &VectorQuery,
        plan: &CachedPlan,
        meta: &Arc<SegmentMeta>,
        k: usize,
        ctx: SegCtx<'_>,
    ) -> Result<Vec<Neighbor>> {
        // `query.segment_ns` sums wall time across segments, so with fan-out
        // it can exceed `query.exec_ns`; the query log reports it as the
        // aggregate per-segment scan effort.
        let t = Stopwatch::start();
        let r = self.search_one_segment_timed(table, vw, opts, bound, v, plan, meta, k, ctx);
        self.metrics.counter("query.segment_ns").add(t.elapsed_nanos());
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn search_one_segment_timed(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
        v: &VectorQuery,
        plan: &CachedPlan,
        meta: &Arc<SegmentMeta>,
        k: usize,
        ctx: SegCtx<'_>,
    ) -> Result<Vec<Neighbor>> {
        let strategy = plan.strategy;
        let tracer = self.metrics.tracer();
        let mut seg_span = match ctx.trace_parent {
            Some(parent) => tracer.span_under(parent, "segment.search"),
            None => tracer.span("segment.search"),
        };
        seg_span.attr("segment", meta.id.raw());
        seg_span.attr("strategy", strategy.name());
        seg_span.attr("rows", meta.row_count);
        let vis = table.visibility(meta);
        let has_pred = !matches!(bound.predicate, Predicate::True);

        match strategy {
            Strategy::BruteForce => with_segment_retry(vw, meta, |worker| {
                let bits = self.filter_bits(table, &worker, meta, bound, &vis, has_pred)?;
                if bits.is_all_clear() {
                    return Ok(Vec::new());
                }
                let mut hits = worker.brute_force_segment_bounded(
                    table,
                    meta,
                    &v.query,
                    k,
                    Some(&bits),
                    ctx.bound,
                )?;
                if let Some(r) = v.range {
                    hits.retain(|nb| nb.distance <= r);
                }
                Ok(hits)
            }),
            Strategy::PreFilter | Strategy::FilteredTraversal => {
                // Compute the bitset on the owning worker, then run the ANN
                // scan through the VW (serving-aware). Plan B drives the
                // widened bitmap scan; Plan D flips `filter_traversal` on so
                // graph indexes walk the predicate natively (failing nodes
                // steer, passing nodes score), with the plan-time selectivity
                // estimate sizing the beam and hop budget. Non-graph indexes
                // ignore the flag and degrade to the Plan-B bitmap scan.
                let bits = with_segment_retry(vw, meta, |worker| {
                    self.filter_bits(table, &worker, meta, bound, &vis, has_pred)
                })?;
                if bits.is_all_clear() {
                    return Ok(Vec::new());
                }
                let search = if strategy == Strategy::FilteredTraversal {
                    let mut p = opts.search.with_filter_traversal(true);
                    if p.filter_selectivity.is_none() {
                        p.filter_selectivity = plan.selectivity;
                    }
                    p
                } else {
                    opts.search
                };
                // σ over-fetch exists to feed the exact-distance refine of
                // quantized indexes; raw-vector indexes return exact
                // distances already, so padding the demand only inflates the
                // beam (for Plan D the traversal wades ~1/s nodes per
                // demanded result — σ there doubles the whole walk).
                let needs_refine = table
                    .schema()
                    .indexes
                    .first()
                    .map(|d| {
                        matches!(
                            d.spec.kind,
                            bh_vector::IndexKind::HnswSq
                                | bh_vector::IndexKind::IvfPq
                                | bh_vector::IndexKind::IvfPqFs
                        )
                    })
                    .unwrap_or(false);
                let fetch_k =
                    if needs_refine { k.saturating_mul(opts.sigma.max(1)) } else { k };
                let mut hits = match v.range {
                    Some(r) if v.k.is_none() => with_segment_retry(vw, meta, |worker| {
                        match worker.index_handle(meta)? {
                            Some(idx) => {
                                idx.search_with_range(&v.query, r, &search, Some(&bits))
                            }
                            None => {
                                let mut all = worker.brute_force_segment(
                                    table,
                                    meta,
                                    &v.query,
                                    meta.row_count,
                                    Some(&bits),
                                )?;
                                all.retain(|nb| nb.distance <= r);
                                Ok(all)
                            }
                        }
                    })?,
                    // A live pin skips the per-query owner resolution and
                    // cache lookup; the index Arc is the one the sequential
                    // path would have fetched, so results are identical.
                    _ => match ctx.pin {
                        Some((w, idx)) if w.is_alive() => w.search_pinned(
                            idx,
                            &v.query,
                            fetch_k,
                            &search,
                            Some(&bits),
                            ctx.bound,
                        )?,
                        _ => vw.search_segment_bounded(
                            table,
                            meta,
                            &v.query,
                            fetch_k,
                            &search,
                            Some(&bits),
                            ctx.bound,
                        )?,
                    },
                };
                hits = self.maybe_refine(table, vw, meta, v, opts, hits, k, ctx.bound)?;
                if let Some(r) = v.range {
                    hits.retain(|nb| nb.distance <= r);
                }
                Ok(hits)
            }
            Strategy::PostFilter => {
                // On a cold owner the iterator would stall on a full index
                // load; route one serving-friendly top-k through the VW
                // instead (previous owner answers via RPC, Fig. 4), applying
                // the predicate to the returned candidates. The owner warms
                // in the background, so this window is transient.
                let (_, owner) = vw.owner_of(meta)?;
                if meta.index_kind.is_some() && owner.is_alive() && !owner.index_resident(meta) {
                    let fetch_k = k.saturating_mul(opts.sigma.max(1)).saturating_mul(2);
                    let hits =
                        vw.search_segment(table, meta, &v.query, fetch_k, &opts.search, None)?;
                    let visible: Vec<Neighbor> =
                        hits.into_iter().filter(|nb| vis.contains(nb.id as usize)).collect();
                    let passing = if has_pred {
                        with_segment_retry(vw, meta, |worker| {
                            let pred_cols = bound.predicate.referenced_columns();
                            let offsets: Vec<u32> =
                                visible.iter().map(|nb| nb.id as u32).collect();
                            let mut cells: BTreeMap<String, Vec<Value>> = BTreeMap::new();
                            for c in &pred_cols {
                                cells.insert(
                                    c.clone(),
                                    worker.read_cells(table, meta, c, &offsets)?,
                                );
                            }
                            let mut out = Vec::new();
                            for (i, nb) in visible.iter().enumerate() {
                                let row: BTreeMap<String, Value> = pred_cols
                                    .iter()
                                    .map(|c| (c.clone(), cells[c][i].clone()))
                                    .collect();
                                if bound.predicate.eval(&row)? {
                                    out.push(*nb);
                                }
                            }
                            Ok(out)
                        })?
                    } else {
                        visible
                    };
                    let mut hits =
                        self.maybe_refine(table, vw, meta, v, opts, passing, k, ctx.bound)?;
                    if let Some(r) = v.range {
                        hits.retain(|nb| nb.distance <= r);
                    }
                    hits.truncate(k);
                    return Ok(hits);
                }
                with_segment_retry(vw, meta, |worker| {
                // Use the batch task's pinned handle when it belongs to this
                // same owner — one cache lookup for the whole batch.
                let handle = match ctx.pin {
                    Some((w, idx)) if Arc::ptr_eq(w, &worker) => Some(idx.clone()),
                    _ => worker.index_handle(meta)?,
                };
                let Some(index) = handle else {
                    // No index (tiny segment) — brute force is exact anyway.
                    let bits = self.filter_bits(table, &worker, meta, bound, &vis, has_pred)?;
                    let mut hits = worker.brute_force_segment_bounded(
                        table,
                        meta,
                        &v.query,
                        k,
                        Some(&bits),
                        ctx.bound,
                    )?;
                    if let Some(r) = v.range {
                        hits.retain(|nb| nb.distance <= r);
                    }
                    return Ok(hits);
                };
                if !has_pred && v.range.is_none() {
                    // Pure top-k: nothing can be filtered away, so the plain
                    // beam search (which honours ef_search) beats driving the
                    // incremental iterator.
                    let fetch = if index.needs_refine() {
                        k.saturating_mul(opts.sigma.max(1))
                    } else {
                        k
                    };
                    let filter = if vis.is_all_set() { None } else { Some(&vis) };
                    let hits =
                        index.search_with_bound(&v.query, fetch, &opts.search, filter, ctx.bound)?;
                    let mut hits = self.maybe_refine_on(
                        table,
                        &worker,
                        meta,
                        v,
                        opts,
                        hits,
                        k,
                        index.needs_refine(),
                        ctx.bound,
                    )?;
                    hits.truncate(k);
                    return Ok(hits);
                }
                let mut it = index.search_iterator(&v.query, &opts.search)?;
                let pred_cols = bound.predicate.referenced_columns();
                let want = k.saturating_mul(opts.sigma.max(1));
                let mut collected: Vec<Neighbor> = Vec::with_capacity(want);
                let batch_size = k.clamp(16, 256);
                while collected.len() < want {
                    let batch = it.next_batch(batch_size)?;
                    if batch.is_empty() {
                        break;
                    }
                    // If the traversal has gone far past the range bound,
                    // stop early (range pushdown into the iterator).
                    if let Some(r) = v.range {
                        if batch.iter().all(|nb| nb.distance > r * 1.5) {
                            break;
                        }
                    }
                    let visible: Vec<Neighbor> = batch
                        .into_iter()
                        .filter(|nb| vis.contains(nb.id as usize))
                        .collect();
                    if visible.is_empty() {
                        continue;
                    }
                    if has_pred {
                        // Evaluate the predicate on just these rows.
                        let offsets: Vec<u32> = visible.iter().map(|nb| nb.id as u32).collect();
                        let mut cells: BTreeMap<String, Vec<Value>> = BTreeMap::new();
                        for c in &pred_cols {
                            cells.insert(
                                c.clone(),
                                worker.read_cells(table, meta, c, &offsets)?,
                            );
                        }
                        for (i, nb) in visible.iter().enumerate() {
                            let row: BTreeMap<String, Value> = pred_cols
                                .iter()
                                .map(|c| (c.clone(), cells[c][i].clone()))
                                .collect();
                            if bound.predicate.eval(&row)? {
                                collected.push(*nb);
                            }
                        }
                    } else {
                        collected.extend(visible);
                    }
                }
                self.metrics.counter("query.iterator_visited").add(it.visited() as u64);
                drop(it);
                let mut hits = self.maybe_refine_on(
                    table,
                    &worker,
                    meta,
                    v,
                    opts,
                    collected,
                    k,
                    index.needs_refine(),
                    ctx.bound,
                )?;
                if let Some(r) = v.range {
                    hits.retain(|nb| nb.distance <= r);
                }
                hits.truncate(k);
                Ok(hits)
                })
            }
        }
    }

    /// Predicate ∧ visibility bitset for one segment.
    fn filter_bits(
        &self,
        table: &TableStore,
        worker: &Arc<Worker>,
        meta: &SegmentMeta,
        bound: &BoundSelect,
        vis: &Bitset,
        has_pred: bool,
    ) -> Result<Bitset> {
        if !has_pred {
            return Ok(vis.clone());
        }
        let mut bits = worker.eval_predicate(table, meta, &bound.predicate)?;
        bits.intersect_with(vis);
        Ok(bits)
    }

    /// Refine through the VW-assigned worker.
    #[allow(clippy::too_many_arguments)]
    fn maybe_refine(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        meta: &Arc<SegmentMeta>,
        v: &VectorQuery,
        opts: &QueryOptions,
        hits: Vec<Neighbor>,
        k: usize,
        bnd: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        let needs = table
            .schema()
            .indexes
            .first()
            .map(|d| {
                matches!(
                    d.spec.kind,
                    bh_vector::IndexKind::HnswSq
                        | bh_vector::IndexKind::IvfPq
                        | bh_vector::IndexKind::IvfPqFs
                )
            })
            .unwrap_or(false);
        if !needs || hits.is_empty() {
            let mut hits = hits;
            hits.truncate(k.max(1));
            return Ok(hits);
        }
        with_segment_retry(vw, meta, |worker| {
            self.maybe_refine_on(table, &worker, meta, v, opts, hits.clone(), k, true, bnd)
        })
    }

    /// Exact-distance re-rank of the top `σ·k` candidates (`σ·k·c_d`).
    ///
    /// When the query carries a shared bound, a full refined top-k also
    /// *publishes*: the segment-local exact k-th distance is an upper
    /// bound on the global k-th, so CAS-min'ing it into the bound is sound
    /// and lets quantized sibling-segment scans prune against it even
    /// though their own (approximate) scans never publish.
    #[allow(clippy::too_many_arguments)]
    fn maybe_refine_on(
        &self,
        table: &TableStore,
        worker: &Arc<Worker>,
        meta: &SegmentMeta,
        v: &VectorQuery,
        opts: &QueryOptions,
        mut hits: Vec<Neighbor>,
        k: usize,
        needs_refine: bool,
        bnd: Option<&SharedBound>,
    ) -> Result<Vec<Neighbor>> {
        if !needs_refine || hits.is_empty() {
            hits.truncate(k.max(hits.len().min(k))); // keep at most k
            return Ok(hits);
        }
        hits.truncate(k.saturating_mul(opts.sigma.max(1)));
        let mut refined = worker.refine_distances(table, meta, &v.query, v.metric, &hits)?;
        refined.truncate(k);
        self.metrics.counter("query.refined").add(refined.len() as u64);
        if let (Some(b), Some(kth)) = (bnd, refined.get(k.wrapping_sub(1))) {
            b.update(kth.distance);
        }
        Ok(refined)
    }

    // ------------------------------------------------------------ scalar path

    fn exec_scalar(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        opts: &QueryOptions,
        bound: &BoundSelect,
        plan: &CachedPlan,
    ) -> Result<ResultSet> {
        let segments = table.segments();
        let selection: SegmentSelection =
            select_segments(&segments, &bound.predicate, None, &opts.prune);
        self.metrics
            .counter("query.segments_pruned")
            .add(selection.scalar_pruned as u64);
        let mut scalar_span = self.metrics.tracer().span("exec.scalar");
        scalar_span.attr("segments_scheduled", selection.scheduled.len());
        scalar_span.attr("segments_pruned", selection.scalar_pruned);

        let mut out = ResultSet::new(
            bound.projection.iter().map(|p| p.name().to_string()).collect(),
        );
        // (sort key, row) pairs when ordering is requested.
        let mut keyed: Vec<(Option<Value>, Vec<Value>)> = Vec::new();
        let has_pred = !matches!(bound.predicate, Predicate::True);
        for meta in &selection.scheduled {
            let vis = table.visibility(meta);
            let rows_bits = with_segment_retry(vw, meta, |worker| {
                self.filter_bits(table, &worker, meta, bound, &vis, has_pred)
            })?;
            if rows_bits.is_all_clear() {
                continue;
            }
            let offsets: Vec<u32> = rows_bits.iter().map(|o| o as u32).collect();
            // Read every needed column for the qualifying offsets.
            let mut cells: BTreeMap<String, Vec<Value>> = BTreeMap::new();
            let mut needed: Vec<String> = plan.columns_needed.clone();
            if let Some((c, _)) = &bound.scalar_order {
                if !needed.contains(c) {
                    needed.push(c.clone());
                }
            }
            with_segment_retry(vw, meta, |worker| {
                for c in &needed {
                    cells.insert(c.clone(), worker.read_cells(table, meta, c, &offsets)?);
                }
                Ok(())
            })?;
            for i in 0..offsets.len() {
                let row: Vec<Value> = bound
                    .projection
                    .iter()
                    .map(|p| match p {
                        ProjItem::Column(c) => cells[c][i].clone(),
                        ProjItem::Distance(_) => Value::Null,
                    })
                    .collect();
                let key = bound.scalar_order.as_ref().map(|(c, _)| cells[c][i].clone());
                keyed.push((key, row));
            }
        }
        if let Some((_, asc)) = &bound.scalar_order {
            keyed.sort_by(|a, b| {
                let ord = match (&a.0, &b.0) {
                    (Some(x), Some(y)) => {
                        x.partial_cmp_scalar(y).unwrap_or(std::cmp::Ordering::Equal)
                    }
                    _ => std::cmp::Ordering::Equal,
                };
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(limit) = bound.limit {
            keyed.truncate(limit);
        }
        out.rows = keyed.into_iter().map(|(_, r)| r).collect();
        scalar_span.attr("rows", out.rows.len());
        Ok(out)
    }

    // ---------------------------------------------------------- materialize

    /// Fetch projection columns for the winning rows and assemble the result
    /// in ascending-distance order.
    fn materialize(
        &self,
        table: &TableStore,
        vw: &VirtualWarehouse,
        bound: &BoundSelect,
        plan: &CachedPlan,
        hits: &[(SegmentId, u32, f32)],
    ) -> Result<ResultSet> {
        let mut mat_span = self.metrics.tracer().span("materialize");
        mat_span.attr("rows", hits.len());
        let mut out = ResultSet::new(
            bound.projection.iter().map(|p| p.name().to_string()).collect(),
        );
        if hits.is_empty() {
            return Ok(out);
        }
        // Group by segment for block-granular reads.
        let mut by_segment: BTreeMap<SegmentId, Vec<(usize, u32)>> = BTreeMap::new();
        for (pos, (seg, off, _)) in hits.iter().enumerate() {
            by_segment.entry(*seg).or_default().push((pos, *off));
        }
        let proj_cols: Vec<&str> = bound
            .projection
            .iter()
            .filter_map(|p| match p {
                ProjItem::Column(c) => Some(c.as_str()),
                ProjItem::Distance(_) => None,
            })
            .collect();
        let _ = &plan.columns_needed; // columns_needed ⊇ proj_cols by construction

        let mut rows: Vec<Vec<Value>> = vec![Vec::new(); hits.len()];
        for (seg, entries) in by_segment {
            let meta = table.segment(seg)?;
            let offsets: Vec<u32> = entries.iter().map(|&(_, o)| o).collect();
            let mut cells: BTreeMap<String, Vec<Value>> = BTreeMap::new();
            with_segment_retry(vw, &meta, |worker| {
                for c in &proj_cols {
                    cells.insert(c.to_string(), worker.read_cells(table, &meta, c, &offsets)?);
                }
                Ok(())
            })?;
            for (i, &(pos, _)) in entries.iter().enumerate() {
                let row: Vec<Value> = bound
                    .projection
                    .iter()
                    .map(|p| match p {
                        ProjItem::Column(c) => cells[c.as_str()][i].clone(),
                        ProjItem::Distance(_) => Value::Float64(hits[pos].2 as f64),
                    })
                    .collect();
                rows[pos] = row;
            }
        }
        out.rows = rows;
        Ok(out)
    }
}

/// A failure caused by the query's segment snapshot racing a concurrent
/// compaction: the segment or one of its blobs was garbage-collected after
/// scheduling. Retrying against a fresh snapshot resolves it.
fn is_snapshot_race(e: &BhError) -> bool {
    match e {
        BhError::NotFound(msg) => msg.contains("segment"),
        BhError::Storage(msg) => msg.contains("blob not found"),
        _ => false,
    }
}

/// Coarse selectivity band for plan-cache keys: log-spaced so the bands
/// align with the cost model's decision regions (tiny s → Plan A, mid →
/// Plan D on graph indexes / Plan B on quantized ones, near-1 → Plan C).
fn selectivity_band(s: f64) -> u8 {
    match s {
        s if s < 0.001 => 0,
        s if s < 0.01 => 1,
        s if s < 0.05 => 2,
        s if s < 0.2 => 3,
        s if s < 0.5 => 4,
        s if s < 0.8 => 5,
        _ => 6,
    }
}

/// Run `f` against the segment's owning worker, retrying once on a
/// retryable failure after evicting the dead worker (§II-E).
pub fn with_segment_retry<T>(
    vw: &VirtualWarehouse,
    meta: &Arc<SegmentMeta>,
    mut f: impl FnMut(Arc<Worker>) -> Result<T>,
) -> Result<T> {
    let (_, worker) = vw.owner_of(meta)?;
    match f(worker) {
        Err(e) if e.is_retryable() => {
            vw.metrics().counter("vw.query_retries").inc();
            if let Ok((wid, w)) = vw.owner_of(meta) {
                if !w.is_alive() {
                    let _ = vw.scale_down(wid, std::slice::from_ref(meta));
                }
            }
            let (_, worker) = vw.owner_of(meta)?;
            f(worker)
        }
        r => r,
    }
}

/// Convenience used by tests and examples: run one statement string.
pub fn execute_sql_select(
    engine: &QueryEngine,
    table: &TableStore,
    vw: &VirtualWarehouse,
    opts: &QueryOptions,
    sql: &str,
) -> Result<ResultSet> {
    match bh_sql::parse_statement(sql)? {
        bh_sql::Statement::Select(sel) => engine.execute_select(table, vw, opts, &sel),
        other => Err(BhError::Plan(format!("expected SELECT, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_cluster::vw::VwConfig;
    use bh_common::ids::IdGenerator;
    use bh_common::VirtualClock;
    use bh_storage::objectstore::InMemoryObjectStore;
    use bh_storage::schema::TableSchema;
    use bh_storage::table::{TableStoreConfig, TableStore};
    use bh_storage::value::ColumnType;
    use bh_vector::{IndexKind, IndexRegistry, Metric};

    /// A clustered table: rows i have embedding centered at (i%5)·6, label
    /// l{i%2}, score i/n.
    fn setup(
        n: usize,
        kind: IndexKind,
        seg_rows: usize,
    ) -> (Arc<TableStore>, VirtualWarehouse, QueryEngine) {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("score", ColumnType::Float64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", kind, 4, Metric::L2);
        let metrics = MetricsRegistry::new();
        let ts = TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig { segment_max_rows: seg_rows, ..Default::default() },
            Arc::new(IdGenerator::new()),
            metrics.clone(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                // Tiny per-row jitter keeps distances distinct so every
                // strategy returns the same deterministic ordering.
                let c = (i % 5) as f32 * 6.0 + (i as f32) * 1e-4;
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 2)),
                    Value::Float64(i as f64 / n as f64),
                    Value::Vector(vec![c, c + 0.1, c + 0.2, c - 0.1]),
                ]
            })
            .collect();
        ts.insert_rows(rows).unwrap();
        let vw = VirtualWarehouse::new(
            bh_common::VwId(0),
            "q",
            VwConfig::default(),
            ts.remote_store().clone(),
            ts.registry().clone(),
            VirtualClock::shared(),
            metrics.clone(),
            Arc::new(IdGenerator::starting_at(1000)),
        );
        vw.scale_up(&[]);
        vw.scale_up(&[]);
        let engine = QueryEngine::new(metrics);
        (Arc::new(ts), vw, engine)
    }

    fn ids_of(rs: &ResultSet) -> Vec<u64> {
        rs.column_values("id")
            .unwrap()
            .into_iter()
            .map(|v| match v {
                Value::UInt64(x) => x,
                other => panic!("unexpected {other}"),
            })
            .collect()
    }

    #[test]
    fn pure_vector_topk_matches_ground_truth() {
        let (ts, vw, engine) = setup(500, IndexKind::Hnsw, 200);
        let opts = QueryOptions::default();
        // Query at cluster 0 center: nearest rows are those with i%5==0.
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id, dist FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) AS dist LIMIT 10",
        )
        .unwrap();
        assert_eq!(rs.len(), 10);
        for id in ids_of(&rs) {
            assert_eq!(id % 5, 0, "row {id} not from cluster 0");
        }
        // Distances ascending.
        let d = rs.column_values("dist").unwrap();
        for w in d.windows(2) {
            assert!(w[0].as_f64().unwrap() <= w[1].as_f64().unwrap());
        }
    }

    #[test]
    fn all_four_strategies_agree_on_results() {
        let (ts, vw, engine) = setup(600, IndexKind::Hnsw, 300);
        let sql = "SELECT id FROM t WHERE label = 'l0' \
                   ORDER BY L2Distance(emb, [6.0, 6.1, 6.2, 5.9]) LIMIT 8";
        let mut results = Vec::new();
        for strategy in [
            Strategy::BruteForce,
            Strategy::PreFilter,
            Strategy::PostFilter,
            Strategy::FilteredTraversal,
        ] {
            let opts = QueryOptions {
                forced_strategy: Some(strategy),
                search: SearchParams::default().with_ef(128),
                ..Default::default()
            };
            let rs = execute_sql_select(&engine, &ts, &vw, &opts, sql).unwrap();
            assert_eq!(rs.len(), 8, "{strategy:?}");
            for id in ids_of(&rs) {
                assert_eq!(id % 2, 0, "{strategy:?} returned non-l0 row {id}");
                assert_eq!(id % 5, 1, "{strategy:?} returned row outside cluster 1: {id}");
            }
            results.push(ids_of(&rs));
        }
        // Brute force is exact; ANN strategies must match it here (clusters
        // are well separated).
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        assert_eq!(results[0], results[3]);
    }

    #[test]
    fn hybrid_filter_is_respected_with_cbo() {
        let (ts, vw, engine) = setup(400, IndexKind::Hnsw, 200);
        let opts = QueryOptions::default();
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id, label FROM t WHERE label = 'l1' AND id < 100 \
             ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
        )
        .unwrap();
        assert!(!rs.is_empty());
        for row in &rs.rows {
            let Value::UInt64(id) = row[0] else { panic!() };
            assert!(id < 100);
            assert_eq!(row[1], Value::Str("l1".into()));
        }
    }

    #[test]
    fn distance_range_query() {
        let (ts, vw, engine) = setup(500, IndexKind::Hnsw, 250);
        let opts = QueryOptions::default();
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id, dist FROM t WHERE L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) < 1.0 \
             ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) AS dist LIMIT 1000",
        )
        .unwrap();
        assert_eq!(rs.len(), 100, "exactly the cluster-0 rows fall within 1.0");
        for v in rs.column_values("dist").unwrap() {
            assert!(v.as_f64().unwrap() <= 1.0);
        }
    }

    #[test]
    fn quantized_index_is_refined_to_exact_distances() {
        let (ts, vw, engine) = setup(800, IndexKind::IvfPq, 800);
        let opts = QueryOptions {
            search: SearchParams::default().with_nprobe(32),
            ..Default::default()
        };
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id, dist FROM t ORDER BY L2Distance(emb, [12.0, 12.1, 12.2, 11.9]) AS dist LIMIT 5",
        )
        .unwrap();
        assert_eq!(rs.len(), 5);
        // Exact distance of a cluster-2 row to its own center is tiny; the
        // refined output must carry exact (near-zero) distances, not ADC
        // approximations of arbitrary scale.
        let d0 = rs.column_values("dist").unwrap()[0].as_f64().unwrap();
        assert!(d0 < 0.1, "refined distance should be exact, got {d0}");
        assert!(engine.metrics.counter_value("query.refined") > 0);
        for id in ids_of(&rs) {
            assert_eq!(id % 5, 2);
        }
    }

    #[test]
    fn scalar_only_query_with_order_and_limit() {
        let (ts, vw, engine) = setup(100, IndexKind::Hnsw, 100);
        let opts = QueryOptions::default();
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id, score FROM t WHERE id >= 90 ORDER BY score DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(ids_of(&rs), vec![99, 98, 97]);
    }

    #[test]
    fn plan_cache_hits_on_repeated_shape() {
        let (ts, vw, engine) = setup(200, IndexKind::Hnsw, 200);
        let opts = QueryOptions::default();
        for q in 0..5 {
            let sql = format!(
                "SELECT id FROM t WHERE label = 'l{}' \
                 ORDER BY L2Distance(emb, [{}.0, 0.0, 0.0, 0.0]) LIMIT 3",
                q % 2,
                q % 5
            );
            execute_sql_select(&engine, &ts, &vw, &opts, &sql).unwrap();
        }
        let (hits, misses) = engine.plan_cache().stats();
        assert_eq!(misses, 1, "one shape → one miss");
        assert_eq!(hits, 4);
    }

    #[test]
    fn cbo_picks_brute_force_for_tiny_pass_fraction() {
        let (ts, vw, engine) = setup(1000, IndexKind::Hnsw, 1000);
        let opts = QueryOptions { enable_plan_cache: false, ..Default::default() };
        // id < 5 passes 0.5% of rows → Plan A.
        execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id FROM t WHERE id < 5 \
             ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
        )
        .unwrap();
        assert!(engine.metrics.counter_value("query.cbo.BruteForce") >= 1);
        // No filter → post-filter (plain ANN).
        execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 3",
        )
        .unwrap();
        assert!(engine.metrics.counter_value("query.cbo.PostFilter") >= 1);
    }

    #[test]
    fn cbo_picks_filtered_traversal_at_mid_selectivity() {
        let (ts, vw, engine) = setup(1000, IndexKind::Hnsw, 1000);
        let opts = QueryOptions { enable_plan_cache: false, ..Default::default() };
        // label = 'l0' passes half the rows with k=100 on a graph index: the
        // √s traversal beats exact distances on 500 rows (A), the widened
        // bitmap scan (B) and the row-wise post-filter pull (C).
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id FROM t WHERE label = 'l0' \
             ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 100",
        )
        .unwrap();
        assert_eq!(rs.len(), 100);
        for id in ids_of(&rs) {
            assert_eq!(id % 2, 0, "Plan D returned non-l0 row {id}");
        }
        assert!(engine.metrics.counter_value("query.cbo.FilteredTraversal") >= 1);
        assert!(engine.metrics.counter_value("query.plan.filtered_traversal") >= 1);
    }

    #[test]
    fn explain_lists_all_four_plan_costs() {
        let (ts, vw, engine) = setup(400, IndexKind::Hnsw, 400);
        let _ = &vw;
        let sql = "SELECT id FROM t WHERE label = 'l0' \
                   ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 10";
        let stmt = match bh_sql::parse_statement(sql).unwrap() {
            bh_sql::Statement::Select(sel) => sel,
            other => panic!("unexpected {other:?}"),
        };
        let out = engine.explain_select(&ts, &QueryOptions::default(), &stmt).unwrap();
        for plan in ["Plan A", "Plan B", "Plan C", "Plan D"] {
            assert!(out.contains(plan), "EXPLAIN missing {plan}: {out}");
        }
        assert!(out.contains("strategy: "), "{out}");
    }

    #[test]
    fn deleted_rows_are_invisible_to_search() {
        let (ts, vw, engine) = setup(300, IndexKind::Hnsw, 300);
        ts.delete_where(&Predicate::eq("id", Value::UInt64(0))).unwrap();
        ts.delete_where(&Predicate::eq("id", Value::UInt64(5))).unwrap();
        let opts = QueryOptions::default();
        for strategy in [
            Strategy::BruteForce,
            Strategy::PreFilter,
            Strategy::PostFilter,
            Strategy::FilteredTraversal,
        ] {
            let o = QueryOptions { forced_strategy: Some(strategy), ..opts.clone() };
            let rs = execute_sql_select(
                &engine,
                &ts,
                &vw,
                &o,
                "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 10",
            )
            .unwrap();
            let ids = ids_of(&rs);
            assert!(!ids.contains(&0), "{strategy:?} returned deleted row 0");
            assert!(!ids.contains(&5), "{strategy:?} returned deleted row 5");
        }
    }

    #[test]
    fn semantic_pruning_with_adaptive_expansion_still_finds_k() {
        let (ts, vw, engine) = setup(500, IndexKind::Hnsw, 50);
        // Aggressive pruning: schedule 20% of segments; ask for more rows
        // than one cluster bucket holds under the filter.
        let opts = QueryOptions {
            prune: PruneConfig::default().with_semantic(0.2),
            ..Default::default()
        };
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id FROM t WHERE label = 'l0' \
             ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 60",
        )
        .unwrap();
        assert_eq!(rs.len(), 60, "adaptive expansion must fill k");
        assert!(engine.metrics.counter_value("query.adaptive_expansions") > 0);
    }

    #[test]
    fn parallel_fanout_matches_sequential_results() {
        // 12 segments, deletes in two of them: the fan-out must return the
        // same ids AND bit-identical sorted distances as sequential search.
        let (ts, vw, engine) = setup(600, IndexKind::Hnsw, 50);
        ts.delete_where(&Predicate::eq("id", Value::UInt64(0))).unwrap();
        ts.delete_where(&Predicate::eq("id", Value::UInt64(45))).unwrap();
        let sql = "SELECT id, dist FROM t \
                   ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) AS dist LIMIT 25";
        let seq_opts = QueryOptions { intra_query_parallelism: 1, ..Default::default() };
        let par_opts = QueryOptions { intra_query_parallelism: 8, ..Default::default() };
        let seq = execute_sql_select(&engine, &ts, &vw, &seq_opts, sql).unwrap();
        let par = execute_sql_select(&engine, &ts, &vw, &par_opts, sql).unwrap();
        assert_eq!(ids_of(&seq), ids_of(&par));
        assert!(!ids_of(&par).contains(&0));
        assert!(!ids_of(&par).contains(&45));
        let ds: Vec<f64> =
            seq.column_values("dist").unwrap().iter().map(|v| v.as_f64().unwrap()).collect();
        let dp: Vec<f64> =
            par.column_values("dist").unwrap().iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(ds, dp, "parallel distances must be bit-identical to sequential");
        for w in dp.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(engine.metrics.counter_value("query.parallel_segments") >= 12);
        assert!(engine.metrics.counter_value("query.fanout_batches") >= 1);
        // Exactly one kernel-tier gauge is set.
        let tiers = ["kernel.tier.avx2", "kernel.tier.neon", "kernel.tier.scalar"];
        let set: u64 = tiers.iter().map(|t| engine.metrics.gauge_value(t)).sum();
        assert_eq!(set, 1);
    }

    #[test]
    fn batched_execution_matches_sequential() {
        // 12 segments, deletes, a mix of filtered / unfiltered / scalar
        // statements: execute_batch must return, per statement, exactly what
        // a sequential execute loop returns — ids AND bit-identical
        // distances — with the shared bound on and off.
        let (ts, vw, engine) = setup(600, IndexKind::Hnsw, 50);
        ts.delete_where(&Predicate::eq("id", Value::UInt64(0))).unwrap();
        ts.delete_where(&Predicate::eq("id", Value::UInt64(45))).unwrap();
        let sqls = [
            "SELECT id, dist FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) AS dist LIMIT 25",
            "SELECT id FROM t WHERE label = 'l0' \
             ORDER BY L2Distance(emb, [6.0, 6.1, 6.2, 5.9]) LIMIT 8",
            "SELECT id, score FROM t WHERE id >= 90 ORDER BY score DESC LIMIT 3",
            "SELECT id, dist FROM t ORDER BY L2Distance(emb, [12.0, 12.1, 12.2, 11.9]) AS dist LIMIT 7",
        ];
        let stmts: Vec<SelectStmt> = sqls
            .iter()
            .map(|s| match bh_sql::parse_statement(s).unwrap() {
                bh_sql::Statement::Select(sel) => sel,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        for share_bound in [true, false] {
            let opts = QueryOptions { share_bound, ..Default::default() };
            let seq: Vec<ResultSet> = stmts
                .iter()
                .map(|s| engine.execute_select(&ts, &vw, &opts, s).unwrap())
                .collect();
            let batched = engine.execute_select_batch(&ts, &vw, &opts, &stmts).unwrap();
            assert_eq!(batched.len(), stmts.len());
            for (i, (s, b)) in seq.iter().zip(&batched).enumerate() {
                assert_eq!(s.rows, b.rows, "statement {i} (share_bound={share_bound})");
            }
        }
        assert!(engine.metrics.counter_value("query.batch_size") >= 8);
    }

    #[test]
    fn batched_execution_single_statement_and_empty_batch() {
        let (ts, vw, engine) = setup(200, IndexKind::Hnsw, 100);
        let opts = QueryOptions::default();
        assert!(engine.execute_select_batch(&ts, &vw, &opts, &[]).unwrap().is_empty());
        let sql = "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 5";
        let stmt = match bh_sql::parse_statement(sql).unwrap() {
            bh_sql::Statement::Select(sel) => sel,
            other => panic!("unexpected {other:?}"),
        };
        let one = engine.execute_select_batch(&ts, &vw, &opts, &[stmt]).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(ids_of(&one[0]).len(), 5);
    }

    #[test]
    fn shared_bound_prunes_across_segments() {
        // Pure top-k statements in a batch each carry a shared bound: once
        // a query's early segments publish their k-th distance, its scans
        // of later segments must record skipped candidates. BruteForce is
        // forced so every candidate row consults the bound.
        let (ts, vw, engine) = setup(500, IndexKind::Flat, 50);
        let sql = "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 5";
        let stmt = match bh_sql::parse_statement(sql).unwrap() {
            bh_sql::Statement::Select(sel) => sel,
            other => panic!("unexpected {other:?}"),
        };
        let opts = QueryOptions {
            forced_strategy: Some(Strategy::BruteForce),
            intra_query_parallelism: 1,
            ..Default::default()
        };
        let stmts: Vec<SelectStmt> = (0..4).map(|_| stmt.clone()).collect();
        let rs = engine.execute_select_batch(&ts, &vw, &opts, &stmts).unwrap();
        for r in &rs {
            assert_eq!(ids_of(r), ids_of(&rs[0]));
        }
        assert!(
            engine.metrics.counter_value("query.bound_skips") > 0,
            "shared bound should have skipped candidates in later segments"
        );
    }

    #[test]
    fn quantized_batch_with_shared_bound_matches_sequential() {
        // Quantized indexes now participate in the shared bound (margin
        // pruning + refine publication) instead of opting out. Batches with
        // duplicate statements (which share ONE bound) and a filtered
        // variant (which must NOT share the unfiltered bound) must still be
        // bit-identical to sequential execution, with a nonzero skip rate.
        for kind in [IndexKind::IvfPqFs, IndexKind::IvfPq, IndexKind::HnswSq] {
            let (ts, vw, engine) = setup(600, kind, 50);
            let sqls = [
                "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 5",
                "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 5",
                "SELECT id FROM t WHERE label = 'l0' \
                 ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 5",
                "SELECT id FROM t ORDER BY L2Distance(emb, [12.0, 12.1, 12.2, 11.9]) LIMIT 5",
            ];
            let stmts: Vec<SelectStmt> = sqls
                .iter()
                .map(|s| match bh_sql::parse_statement(s).unwrap() {
                    bh_sql::Statement::Select(sel) => sel,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            // Sequential segment order so the first segment's refined k-th
            // is published before later segments scan.
            let opts = QueryOptions { intra_query_parallelism: 1, ..Default::default() };
            let seq: Vec<ResultSet> = stmts
                .iter()
                .map(|s| engine.execute_select(&ts, &vw, &opts, s).unwrap())
                .collect();
            let batched = engine.execute_select_batch(&ts, &vw, &opts, &stmts).unwrap();
            for (i, (s, b)) in seq.iter().zip(&batched).enumerate() {
                assert_eq!(s.rows, b.rows, "statement {i} ({kind:?})");
            }
            assert!(
                engine.metrics.counter_value("query.bound_skips") > 0,
                "{kind:?}: quantized scans should have skipped far candidates"
            );
        }
    }

    #[test]
    fn worker_failure_mid_query_is_retried() {
        let (ts, vw, engine) = setup(400, IndexKind::Hnsw, 100);
        // Kill one worker; queries must still succeed via retry-eviction.
        let victim = vw.worker_ids()[0];
        vw.inject_failure(victim).unwrap();
        let opts = QueryOptions::default();
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
        )
        .unwrap();
        assert_eq!(rs.len(), 5);
        assert_eq!(vw.worker_count(), 1);
    }

    #[test]
    fn projection_with_vector_column() {
        let (ts, vw, engine) = setup(100, IndexKind::Hnsw, 100);
        let opts = QueryOptions::default();
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &opts,
            "SELECT emb FROM t ORDER BY L2Distance(emb, [0.0, 0.1, 0.2, -0.1]) LIMIT 1",
        )
        .unwrap();
        let Value::Vector(v) = &rs.rows[0][0] else { panic!("expected vector") };
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn empty_table_returns_empty() {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 4, Metric::L2);
        let metrics = MetricsRegistry::new();
        let ts = TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            TableStoreConfig::default(),
            Arc::new(IdGenerator::new()),
            metrics.clone(),
        )
        .unwrap();
        let vw = VirtualWarehouse::new(
            bh_common::VwId(0),
            "q",
            VwConfig::default(),
            ts.remote_store().clone(),
            ts.registry().clone(),
            VirtualClock::shared(),
            metrics.clone(),
            Arc::new(IdGenerator::starting_at(1000)),
        );
        vw.scale_up(&[]);
        let engine = QueryEngine::new(metrics);
        let rs = execute_sql_select(
            &engine,
            &ts,
            &vw,
            &QueryOptions::default(),
            "SELECT id FROM t ORDER BY L2Distance(emb, [0.0, 0.0, 0.0, 0.0]) LIMIT 5",
        )
        .unwrap();
        assert!(rs.is_empty());
    }
}
