//! # bh-query — the hybrid query engine
//!
//! Turns parsed SQL into executed hybrid queries over the storage and
//! cluster layers, implementing §II-C and §IV of the paper:
//!
//! * [`bind`] — semantic analysis: AST → typed predicate + vector-query
//!   component (distance ORDER BY, distance range constraints, top-k).
//! * [`plan`] — logical plans and the rule-based optimizations (distance
//!   top-k pushdown, distance range-filter pushdown, vector column pruning).
//! * [`cost`] — the accuracy-aware cost model (Table II, Eqs. 1–3) choosing
//!   among Plan A (brute force), Plan B (pre-filter ANN bitmap scan),
//!   Plan C (post-filter iterative search) and Plan D (filter-aware graph
//!   traversal, graph indexes only).
//! * [`plancache`] — parameterized plan caching and short-circuit processing
//!   for repetitive hybrid workloads (§IV-C).
//! * [`exec`] — the distributed executor: scheduling with pruning, the four
//!   physical strategies, refine, adaptive segment expansion, global top-k
//!   merge, and projection fetch.

pub mod bind;
pub mod cost;
pub mod exec;
pub mod plan;
pub mod plancache;
pub mod result;

pub use bind::{bind_select, BoundSelect, VectorQuery};
pub use cost::{CostParams, Strategy};
pub use exec::{QueryEngine, QueryOptions};
pub use result::ResultSet;
