//! Table schemas: columns, sort key, partitioning, and vector index
//! definitions — the storage-side mirror of Example 1's DDL.

use crate::value::{ColumnType, Value};
use bh_common::{BhError, Result};
use bh_vector::{IndexKind, IndexSpec, Metric};
use serde::{Deserialize, Serialize};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// A column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// A vector index declared on a column
/// (`INDEX ann_idx embedding TYPE HNSW('DIM=960')`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorIndexDef {
    /// Index name.
    pub name: String,
    /// Indexed vector column.
    pub column: String,
    /// Full index specification.
    pub spec: IndexSpec,
}

/// Semantic clustering declaration (`CLUSTER BY embedding INTO n BUCKETS`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterBy {
    /// Clustered vector column.
    pub column: String,
    /// Number of k-means buckets.
    pub buckets: usize,
}

/// Full table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Sort key (`ORDER BY`); rows inside a segment are sorted by it.
    pub order_by: Vec<String>,
    /// Scalar partition key columns (`PARTITION BY`).
    pub partition_by: Vec<String>,
    /// Semantic partitioning (`CLUSTER BY … INTO n BUCKETS`).
    pub cluster_by: Option<ClusterBy>,
    /// Vector indexes (at most one per vector column).
    pub indexes: Vec<VectorIndexDef>,
}

impl TableSchema {
    /// Start a builder-style schema with just a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            order_by: Vec::new(),
            partition_by: Vec::new(),
            cluster_by: None,
            indexes: Vec::new(),
        }
    }

    /// Append a column.
    pub fn with_column(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Set the sort key.
    pub fn with_order_by(mut self, cols: &[&str]) -> Self {
        self.order_by = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the scalar partition key.
    pub fn with_partition_by(mut self, cols: &[&str]) -> Self {
        self.partition_by = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Enable semantic clustering on a vector column.
    pub fn with_cluster_by(mut self, column: &str, buckets: usize) -> Self {
        self.cluster_by = Some(ClusterBy { column: column.into(), buckets });
        self
    }

    /// Declare a vector index; infers the metric/dim defaults from params.
    pub fn with_vector_index(
        mut self,
        name: &str,
        column: &str,
        kind: IndexKind,
        dim: usize,
        metric: Metric,
    ) -> Self {
        self.indexes.push(VectorIndexDef {
            name: name.into(),
            column: column.into(),
            spec: IndexSpec::new(kind, dim, metric),
        });
        self
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Position of a column in declaration order.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The index defined over `column`, if any.
    pub fn index_on(&self, column: &str) -> Option<&VectorIndexDef> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// The single vector column of the table, if exactly one exists.
    pub fn sole_vector_column(&self) -> Option<&ColumnDef> {
        let mut it = self.columns.iter().filter(|c| c.ty.is_vector());
        match (it.next(), it.next()) {
            (Some(c), None) => Some(c),
            _ => None,
        }
    }

    /// Validate internal consistency; called at CREATE TABLE time.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(BhError::InvalidArgument("table name must not be empty".into()));
        }
        if self.columns.is_empty() {
            return Err(BhError::InvalidArgument("table must have at least one column".into()));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|o| o.name == c.name) {
                return Err(BhError::AlreadyExists(format!("duplicate column {}", c.name)));
            }
        }
        for col in self.order_by.iter().chain(&self.partition_by) {
            match self.column(col) {
                None => return Err(BhError::NotFound(format!("key column {col}"))),
                Some(def) if def.ty.is_vector() => {
                    return Err(BhError::InvalidArgument(format!(
                        "vector column {col} cannot be a sort/partition key"
                    )))
                }
                _ => {}
            }
        }
        if let Some(cb) = &self.cluster_by {
            let def = self
                .column(&cb.column)
                .ok_or_else(|| BhError::NotFound(format!("cluster column {}", cb.column)))?;
            if !def.ty.is_vector() {
                return Err(BhError::InvalidArgument(format!(
                    "CLUSTER BY column {} must be a vector column",
                    cb.column
                )));
            }
            if cb.buckets == 0 {
                return Err(BhError::InvalidArgument("CLUSTER BY needs >= 1 bucket".into()));
            }
        }
        for (i, idx) in self.indexes.iter().enumerate() {
            idx.spec.validate()?;
            let col = self
                .column(&idx.column)
                .ok_or_else(|| BhError::NotFound(format!("index column {}", idx.column)))?;
            match col.ty {
                ColumnType::Vector(d) => {
                    if d != 0 && d != idx.spec.dim {
                        return Err(BhError::DimensionMismatch { expected: d, got: idx.spec.dim });
                    }
                }
                _ => {
                    return Err(BhError::InvalidArgument(format!(
                        "index {} must target a vector column",
                        idx.name
                    )))
                }
            }
            if self.indexes[..i].iter().any(|o| o.column == idx.column) {
                return Err(BhError::AlreadyExists(format!(
                    "multiple indexes on column {}",
                    idx.column
                )));
            }
        }
        Ok(())
    }

    /// Validate one row against the schema (arity + per-cell type).
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(BhError::InvalidArgument(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            // Vector columns check against the index's dim when declared 0.
            let ty = match c.ty {
                ColumnType::Vector(0) => {
                    let dim = self.index_on(&c.name).map(|i| i.spec.dim).unwrap_or(0);
                    ColumnType::Vector(dim)
                }
                t => t,
            };
            if !v.conforms_to(ty) {
                return Err(BhError::InvalidArgument(format!(
                    "value {v} does not conform to column {} ({})",
                    c.name,
                    ty.name()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn images_schema() -> TableSchema {
        TableSchema::new("images")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("published_time", ColumnType::DateTime)
            .with_column("embedding", ColumnType::Vector(8))
            .with_order_by(&["published_time"])
            .with_partition_by(&["label"])
            .with_cluster_by("embedding", 4)
            .with_vector_index("ann_idx", "embedding", IndexKind::Hnsw, 8, Metric::L2)
    }

    #[test]
    fn example1_like_schema_validates() {
        images_schema().validate().unwrap();
    }

    #[test]
    fn lookups() {
        let s = images_schema();
        assert_eq!(s.column_index("label"), Some(1));
        assert!(s.column("missing").is_none());
        assert_eq!(s.index_on("embedding").unwrap().name, "ann_idx");
        assert_eq!(s.sole_vector_column().unwrap().name, "embedding");
    }

    #[test]
    fn duplicate_column_rejected() {
        let s = TableSchema::new("t")
            .with_column("a", ColumnType::UInt64)
            .with_column("a", ColumnType::Int64);
        assert!(s.validate().is_err());
    }

    #[test]
    fn vector_partition_key_rejected() {
        let s = TableSchema::new("t")
            .with_column("v", ColumnType::Vector(4))
            .with_partition_by(&["v"]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn cluster_by_requires_vector_column() {
        let s = TableSchema::new("t")
            .with_column("a", ColumnType::UInt64)
            .with_cluster_by("a", 4);
        assert!(s.validate().is_err());
        let s2 = TableSchema::new("t")
            .with_column("v", ColumnType::Vector(4))
            .with_cluster_by("v", 0);
        assert!(s2.validate().is_err());
    }

    #[test]
    fn index_dimension_must_match_column() {
        let s = TableSchema::new("t")
            .with_column("v", ColumnType::Vector(8))
            .with_vector_index("i", "v", IndexKind::Hnsw, 16, Metric::L2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn index_on_scalar_rejected() {
        let s = TableSchema::new("t")
            .with_column("a", ColumnType::UInt64)
            .with_vector_index("i", "a", IndexKind::Hnsw, 4, Metric::L2);
        assert!(s.validate().is_err());
    }

    #[test]
    fn row_validation() {
        let s = images_schema();
        let good = vec![
            Value::UInt64(1),
            Value::Str("animal".into()),
            Value::DateTime(100),
            Value::Vector(vec![0.0; 8]),
        ];
        s.validate_row(&good).unwrap();
        let bad_arity = vec![Value::UInt64(1)];
        assert!(s.validate_row(&bad_arity).is_err());
        let bad_dim = vec![
            Value::UInt64(1),
            Value::Str("x".into()),
            Value::DateTime(100),
            Value::Vector(vec![0.0; 4]),
        ];
        assert!(s.validate_row(&bad_dim).is_err());
        let bad_type = vec![
            Value::Str("oops".into()),
            Value::Str("x".into()),
            Value::DateTime(100),
            Value::Vector(vec![0.0; 8]),
        ];
        assert!(s.validate_row(&bad_type).is_err());
    }

    #[test]
    fn vector_dim_inferred_from_index_when_column_is_dimless() {
        let s = TableSchema::new("t")
            .with_column("v", ColumnType::Vector(0))
            .with_vector_index("i", "v", IndexKind::Hnsw, 4, Metric::L2);
        s.validate().unwrap();
        assert!(s.validate_row(&[Value::Vector(vec![0.0; 4])]).is_ok());
        assert!(s.validate_row(&[Value::Vector(vec![0.0; 5])]).is_err());
    }
}
