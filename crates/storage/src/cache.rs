//! Hierarchical caches (§II-D, §IV-C).
//!
//! * [`IndexCache`] — the vector-index cache every worker owns: in-memory LRU
//!   (fastest) → local-disk blob cache (avoids repeated remote reads) →
//!   remote shared store (source of truth). Each tier's hit/miss counters are
//!   exported through the metrics registry, which is what the cache-miss and
//!   elasticity experiments observe.
//! * [`BlockCache`] — the adaptive in-memory column-block cache with the
//!   paper's two refinements: **separate LRU spaces** for small metadata
//!   entries vs large data blocks (so scans don't evict hot metadata), and a
//!   **row-limit bypass** so one huge hybrid query can't thrash the cache.
//!
//! All cache counters follow the `cache.<space>.<event>` naming convention
//! (DESIGN.md §9): `cache.{meta,data}.{hit,miss}` for the block cache,
//! `cache.index.{mem,disk}.{hit,miss}` for the index-cache tiers.

use crate::lru::LruCache;
use crate::objectstore::ObjectStore;
use crate::segment::SegmentMeta;
use bh_common::{MetricsRegistry, Result, SegmentId};
use bh_vector::{IndexRegistry, VectorIndex};
use bytes::Bytes;
use std::sync::Arc;

/// Per-worker hierarchical vector-index cache.
pub struct IndexCache {
    mem: LruCache<SegmentId, Arc<dyn VectorIndex>>,
    /// Local disk tier; `None` disables it (memory → remote directly).
    disk: Option<Arc<dyn ObjectStore>>,
    remote: Arc<dyn ObjectStore>,
    registry: Arc<IndexRegistry>,
    metrics: MetricsRegistry,
}

impl IndexCache {
    /// A cache with the given memory capacity over the given tiers.
    pub fn new(
        mem_capacity_bytes: usize,
        disk: Option<Arc<dyn ObjectStore>>,
        remote: Arc<dyn ObjectStore>,
        registry: Arc<IndexRegistry>,
        metrics: MetricsRegistry,
    ) -> Self {
        Self { mem: LruCache::new(mem_capacity_bytes), disk, remote, registry, metrics }
    }

    /// Is the index resident in memory right now? (Used by the scheduler's
    /// cache-aware paths and by the cache-miss experiment.)
    pub fn resident(&self, seg: SegmentId) -> bool {
        self.mem.contains(&seg)
    }

    /// Fetch the index for a segment through the hierarchy, promoting on the
    /// way up. Returns `None` if the segment has no index.
    pub fn get(&self, meta: &SegmentMeta) -> Result<Option<Arc<dyn VectorIndex>>> {
        let Some(kind) = meta.index_kind else { return Ok(None) };
        let mut span = self.metrics.tracer().span("cache.index.get");
        span.attr("segment", meta.id.raw());
        if let Some(idx) = self.mem.get(&meta.id) {
            self.metrics.counter("cache.index.mem.hit").inc();
            span.attr("tier", "mem");
            return Ok(Some(idx));
        }
        self.metrics.counter("cache.index.mem.miss").inc();

        let key = meta.index_key();
        let blob: Bytes = match &self.disk {
            Some(disk) if disk.exists(&key) => {
                self.metrics.counter("cache.index.disk.hit").inc();
                span.attr("tier", "disk");
                disk.get(&key)?
            }
            _ => {
                if self.disk.is_some() {
                    self.metrics.counter("cache.index.disk.miss").inc();
                }
                let blob = self.remote.get(&key)?;
                self.metrics.counter("cache.index.remote.fetch").inc();
                span.attr("tier", "remote");
                if let Some(disk) = &self.disk {
                    disk.put(&key, blob.clone())?;
                }
                blob
            }
        };
        let idx = self.registry.load(kind, &blob)?;
        self.mem.put(meta.id, idx.clone(), idx.memory_usage());
        Ok(Some(idx))
    }

    /// Cache-aware preload (§II-D): pull the given segments' indexes into
    /// memory (and local disk) ahead of queries. Errors on individual
    /// segments are returned; successfully preloaded count is the payload.
    pub fn preload<'a>(&self, metas: impl IntoIterator<Item = &'a SegmentMeta>) -> Result<usize> {
        let mut n = 0;
        for meta in metas {
            if self.get(meta)?.is_some() {
                n += 1;
                self.metrics.counter("cache.index.preload").inc();
            }
        }
        Ok(n)
    }

    /// Drop a segment from memory and disk tiers (e.g. after compaction).
    pub fn invalidate(&self, meta: &SegmentMeta) {
        self.mem.remove(&meta.id);
        if let Some(disk) = &self.disk {
            let _ = disk.delete(&meta.index_key());
        }
    }

    /// Drop everything from the memory tier (simulates worker restart).
    pub fn clear_memory(&self) {
        self.mem.clear();
    }

    /// Bytes of index currently resident in memory.
    pub fn memory_used(&self) -> usize {
        self.mem.used_bytes()
    }
}

/// Cached block entry classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Small, hot entries (segment metadata, sparse index pages).
    Meta,
    /// Column data blocks.
    Data,
}

/// Adaptive column-block cache with split metadata/data spaces.
pub struct BlockCache {
    meta_space: LruCache<String, Bytes>,
    data_space: LruCache<String, Bytes>,
    /// Queries reading more than this many rows bypass the data space
    /// entirely (anti-thrashing row limit, §IV-C).
    row_limit: usize,
    metrics: MetricsRegistry,
}

impl BlockCache {
    /// A cache with separate metadata/data capacities and a row limit.
    pub fn new(
        meta_capacity: usize,
        data_capacity: usize,
        row_limit: usize,
        metrics: MetricsRegistry,
    ) -> Self {
        Self {
            meta_space: LruCache::new(meta_capacity),
            data_space: LruCache::new(data_capacity),
            row_limit,
            metrics,
        }
    }

    /// The anti-thrashing row limit.
    pub fn row_limit(&self) -> usize {
        self.row_limit
    }

    fn space(&self, kind: BlockKind) -> &LruCache<String, Bytes> {
        match kind {
            BlockKind::Meta => &self.meta_space,
            BlockKind::Data => &self.data_space,
        }
    }

    /// Fetch a blob through the cache. `query_rows` is the number of rows the
    /// surrounding query will touch: when it exceeds the row limit the data
    /// space is bypassed (read-through, no insert) so bulk scans cannot evict
    /// the working set. Metadata reads always cache.
    pub fn get_or_fetch(
        &self,
        key: &str,
        kind: BlockKind,
        query_rows: usize,
        fetch: impl FnOnce() -> Result<Bytes>,
    ) -> Result<Bytes> {
        let (label, space_name) = match kind {
            BlockKind::Meta => ("cache.meta", "meta"),
            BlockKind::Data => ("cache.data", "data"),
        };
        let mut span = self.metrics.tracer().span("cache.block.get");
        span.attr("space", space_name);
        let bypass = kind == BlockKind::Data && query_rows > self.row_limit;
        if !bypass {
            if let Some(b) = self.space(kind).get(&key.to_string()) {
                self.metrics.counter(&format!("{label}.hit")).inc();
                span.attr("hit", true);
                return Ok(b);
            }
            self.metrics.counter(&format!("{label}.miss")).inc();
            span.attr("hit", false);
        } else {
            self.metrics.counter("cache.data.bypass").inc();
            span.attr("bypass", true);
        }
        let blob = fetch()?;
        if !bypass {
            self.space(kind).put(key.to_string(), blob.clone(), blob.len().max(1));
        }
        Ok(blob)
    }

    /// Remove every cached blob whose key starts with `prefix` (segment GC).
    pub fn invalidate_prefix(&self, _prefix: &str) {
        // Full clears are rare (compaction) and correctness-neutral, so the
        // simple implementation drops both spaces.
        self.meta_space.clear();
        self.data_space.clear();
    }

    /// Bytes cached in the data space.
    pub fn data_used(&self) -> usize {
        self.data_space.used_bytes()
    }

    /// Bytes cached in the metadata space.
    pub fn meta_used(&self) -> usize {
        self.meta_space.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectstore::InMemoryObjectStore;
    use crate::schema::TableSchema;
    use crate::segment::Segment;
    use crate::value::{ColumnType, Value};
    use bh_common::{LatencyModel, SegmentId, VirtualClock};
    use bh_vector::{IndexKind, IndexSpec, Metric, SearchParams};
    use std::time::Duration;

    fn build_indexed_segment(
        store: &dyn ObjectStore,
        registry: &IndexRegistry,
        id: u64,
        n: usize,
    ) -> SegmentMeta {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Flat, 4, Metric::L2);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::UInt64(i as u64), Value::Vector(vec![i as f32; 4])])
            .collect();
        let mut seg = Segment::from_rows(&schema, SegmentId(id), rows, vec![], None, 0).unwrap();
        // Build + persist the index.
        let spec = IndexSpec::new(IndexKind::Flat, 4, Metric::L2);
        let mut b = registry.create_builder(&spec).unwrap();
        let (data, _) = seg.columns["emb"].vector_data().unwrap();
        let ids: Vec<u64> = (0..n as u64).collect();
        b.add_with_ids(data, &ids).unwrap();
        let idx = b.finish().unwrap();
        let blob = idx.save_bytes().unwrap();
        seg.meta.index_kind = Some(IndexKind::Flat);
        seg.meta.index_bytes = blob.len() as u64;
        store.put(&seg.meta.index_key(), blob).unwrap();
        seg.persist(store).unwrap();
        seg.meta
    }

    #[test]
    fn hierarchy_promotes_and_hits() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let remote = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            LatencyModel::fixed(Duration::from_micros(1000)),
            metrics.clone(),
            "remote",
        ));
        let disk = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            LatencyModel::fixed(Duration::from_micros(10)),
            metrics.clone(),
            "disk",
        ));
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 1, 50);

        let cache = IndexCache::new(
            1 << 20,
            Some(disk.clone() as Arc<dyn ObjectStore>),
            remote.clone() as Arc<dyn ObjectStore>,
            registry,
            metrics.clone(),
        );
        assert!(!cache.resident(meta.id));

        // First get: mem miss, disk miss, remote fetch, promoted everywhere.
        let idx = cache.get(&meta).unwrap().unwrap();
        assert_eq!(idx.meta().len, 50);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);
        assert_eq!(metrics.counter_value("cache.index.disk.miss"), 1);
        assert!(cache.resident(meta.id));
        assert!(disk.exists(&meta.index_key()));

        // Second get: memory hit, no new remote traffic.
        cache.get(&meta).unwrap().unwrap();
        assert_eq!(metrics.counter_value("cache.index.mem.hit"), 1);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);

        // Clear memory (worker restart): next get hits the disk tier only.
        cache.clear_memory();
        cache.get(&meta).unwrap().unwrap();
        assert_eq!(metrics.counter_value("cache.index.disk.hit"), 1);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);
    }

    #[test]
    fn segment_without_index_returns_none() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let schema = TableSchema::new("t").with_column("id", ColumnType::UInt64);
        let seg = Segment::from_rows(
            &schema,
            SegmentId(9),
            vec![vec![Value::UInt64(1)]],
            vec![],
            None,
            0,
        )
        .unwrap();
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert!(cache.get(&seg.meta).unwrap().is_none());
    }

    #[test]
    fn preload_warms_cache_and_invalidate_clears() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let m1 = build_indexed_segment(remote.as_ref(), &registry, 1, 20);
        let m2 = build_indexed_segment(remote.as_ref(), &registry, 2, 20);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert_eq!(cache.preload([&m1, &m2]).unwrap(), 2);
        assert!(cache.resident(m1.id) && cache.resident(m2.id));
        cache.invalidate(&m1);
        assert!(!cache.resident(m1.id));
        assert!(cache.resident(m2.id));
    }

    #[test]
    fn loaded_index_actually_searches() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 3, 30);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        let idx = cache.get(&meta).unwrap().unwrap();
        let got = idx
            .search_with_filter(&[5.0, 5.0, 5.0, 5.0], 1, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 5);
    }

    #[test]
    fn block_cache_split_spaces() {
        let metrics = MetricsRegistry::new();
        let cache = BlockCache::new(1 << 10, 1 << 10, 100, metrics.clone());
        let fetched = std::cell::Cell::new(0);
        let fetch = |data: &'static [u8]| {
            fetched.set(fetched.get() + 1);
            Ok(Bytes::from_static(data))
        };
        cache.get_or_fetch("k1", BlockKind::Data, 10, || fetch(b"datablock")).unwrap();
        cache.get_or_fetch("k1", BlockKind::Data, 10, || fetch(b"datablock")).unwrap();
        assert_eq!(fetched.get(), 1, "second read must hit");
        assert_eq!(metrics.counter_value("cache.data.hit"), 1);
        // Meta space is independent: same key in meta space still misses.
        cache.get_or_fetch("k1", BlockKind::Meta, 10, || fetch(b"m")).unwrap();
        assert_eq!(fetched.get(), 2);
        assert!(cache.meta_used() > 0 && cache.data_used() > 0);
    }

    #[test]
    fn block_cache_row_limit_bypasses_data_space() {
        let metrics = MetricsRegistry::new();
        let cache = BlockCache::new(1 << 10, 1 << 10, 100, metrics.clone());
        // Over the row limit: fetch but do not cache.
        cache
            .get_or_fetch("big", BlockKind::Data, 1000, || Ok(Bytes::from_static(b"x")))
            .unwrap();
        assert_eq!(metrics.counter_value("cache.data.bypass"), 1);
        assert_eq!(cache.data_used(), 0);
        // A small query for the same key misses (it was never cached).
        cache
            .get_or_fetch("big", BlockKind::Data, 1, || Ok(Bytes::from_static(b"x")))
            .unwrap();
        assert_eq!(metrics.counter_value("cache.data.miss"), 1);
        assert!(cache.data_used() > 0);
    }

    #[test]
    fn block_cache_data_eviction_does_not_touch_meta() {
        let cache = BlockCache::new(1 << 10, 64, 10_000, MetricsRegistry::new());
        cache.get_or_fetch("m", BlockKind::Meta, 1, || Ok(Bytes::from_static(b"meta"))).unwrap();
        // Flood the data space well past its 64-byte capacity.
        for i in 0..50 {
            let key = format!("d{i}");
            cache
                .get_or_fetch(&key, BlockKind::Data, 1, || Ok(Bytes::from(vec![0u8; 32])))
                .unwrap();
        }
        assert!(cache.data_used() <= 64);
        // Metadata survived the flood.
        let hit = std::cell::Cell::new(true);
        cache
            .get_or_fetch("m", BlockKind::Meta, 1, || {
                hit.set(false);
                Ok(Bytes::new())
            })
            .unwrap();
        assert!(hit.get(), "metadata was evicted by data-space pressure");
    }
}
