//! Hierarchical caches (§II-D, §IV-C).
//!
//! * [`IndexCache`] — the vector-index cache every worker owns: in-memory LRU
//!   (fastest) → local-disk blob cache (avoids repeated remote reads) →
//!   remote shared store (source of truth). Each tier's hit/miss counters are
//!   exported through the metrics registry, which is what the cache-miss and
//!   elasticity experiments observe.
//! * [`BlockCache`] — the adaptive in-memory column-block cache with the
//!   paper's two refinements: **separate LRU spaces** for small metadata
//!   entries vs large data blocks (so scans don't evict hot metadata), and a
//!   **row-limit bypass** so one huge hybrid query can't thrash the cache.
//!
//! All cache counters follow the `cache.<space>.<event>` naming convention
//! (DESIGN.md §9): `cache.{meta,data}.{hit,miss}` for the block cache,
//! `cache.index.{mem,disk}.{hit,miss}` for the index-cache tiers.

use crate::lru::LruCache;
use crate::objectstore::{ObjectStore, PendingGet};
use crate::segment::SegmentMeta;
use bh_common::{MetricsRegistry, Result, SegmentId};
use bh_vector::{IndexKind, IndexRegistry, VectorIndex};
use bytes::Bytes;
use bh_common::sync::{classes, Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Per-worker hierarchical vector-index cache.
pub struct IndexCache {
    mem: LruCache<SegmentId, Arc<dyn VectorIndex>>,
    /// Local disk tier; `None` disables it (memory → remote directly).
    disk: Option<Arc<dyn ObjectStore>>,
    remote: Arc<dyn ObjectStore>,
    registry: Arc<IndexRegistry>,
    metrics: MetricsRegistry,
    /// Segments whose blob fetch is currently in flight (single-flight
    /// dedup): one caller fetches, the rest wait on `inflight_cv` and then
    /// re-check the memory tier.
    inflight: Mutex<HashSet<SegmentId>>,
    inflight_cv: Condvar,
    /// In-flight prefetched blobs, consumed by the next [`IndexCache::get`].
    /// Never promoted to `mem` by themselves — `resident` stays false until
    /// someone actually asks for the index.
    pending: Mutex<HashMap<SegmentId, PendingGet>>,
    /// Head-only partial indexes (tiered v3 blobs), served while the body is
    /// still in flight; dropped once the full index lands in `mem`.
    partial: Mutex<HashMap<SegmentId, Arc<dyn VectorIndex>>>,
}

impl IndexCache {
    /// A cache with the given memory capacity over the given tiers.
    pub fn new(
        mem_capacity_bytes: usize,
        disk: Option<Arc<dyn ObjectStore>>,
        remote: Arc<dyn ObjectStore>,
        registry: Arc<IndexRegistry>,
        metrics: MetricsRegistry,
    ) -> Self {
        Self {
            mem: LruCache::new(mem_capacity_bytes),
            disk,
            remote,
            registry,
            metrics,
            inflight: Mutex::new(&classes::IDXCACHE_INFLIGHT, HashSet::new()),
            inflight_cv: Condvar::new(),
            pending: Mutex::new(&classes::IDXCACHE_PENDING, HashMap::new()),
            partial: Mutex::new(&classes::IDXCACHE_PARTIAL, HashMap::new()),
        }
    }

    /// Is the index resident in memory right now? (Used by the scheduler's
    /// cache-aware paths and by the cache-miss experiment.)
    pub fn resident(&self, seg: SegmentId) -> bool {
        self.mem.contains(&seg)
    }

    /// Fetch the index for a segment through the hierarchy, promoting on the
    /// way up. Returns `None` if the segment has no index.
    ///
    /// Concurrent gets for the same cold segment are deduplicated: one
    /// caller performs the fetch, the others park on a condvar and read the
    /// promoted index from memory (`cache.index.singleflight.wait` counts
    /// the parked callers).
    pub fn get(&self, meta: &SegmentMeta) -> Result<Option<Arc<dyn VectorIndex>>> {
        let Some(kind) = meta.index_kind else { return Ok(None) };
        let mut span = self.metrics.tracer().span("cache.index.get");
        span.attr("segment", meta.id.raw());
        loop {
            if let Some(idx) = self.mem.get(&meta.id) {
                self.metrics.counter("cache.index.mem.hit").inc();
                span.attr("tier", "mem");
                return Ok(Some(idx));
            }
            self.metrics.counter("cache.index.mem.miss").inc();
            let mut g = self.inflight.lock_checked()?;
            if g.insert(meta.id) {
                break; // we own the fetch
            }
            // Another caller is already fetching this segment: wait for it
            // to finish, then re-check the memory tier.
            self.metrics.counter("cache.index.singleflight.wait").inc();
            self.inflight_cv.wait(&mut g);
        }
        let result = self.fetch_and_promote(meta, kind, &mut span);
        let mut g = self.inflight.lock_checked()?;
        g.remove(&meta.id);
        drop(g);
        self.inflight_cv.notify_all();
        result
    }

    /// The cold path of [`IndexCache::get`]: pull the blob through
    /// prefetch → disk → remote, deserialize, promote to memory.
    fn fetch_and_promote(
        &self,
        meta: &SegmentMeta,
        kind: IndexKind,
        span: &mut bh_common::Span,
    ) -> Result<Option<Arc<dyn VectorIndex>>> {
        let key = meta.index_key();
        let pending = self.pending.lock_checked()?.remove(&meta.id);
        let blob: Bytes = match pending {
            Some(p) => {
                self.metrics.counter("cache.index.prefetch.hit").inc();
                span.attr("tier", "prefetch");
                let blob = p.wait();
                if let Some(disk) = &self.disk {
                    disk.put(&key, blob.clone())?;
                }
                blob
            }
            None => match &self.disk {
                Some(disk) if disk.exists(&key) => {
                    self.metrics.counter("cache.index.disk.hit").inc();
                    span.attr("tier", "disk");
                    disk.get(&key)?
                }
                _ => {
                    if self.disk.is_some() {
                        self.metrics.counter("cache.index.disk.miss").inc();
                    }
                    let blob = self.remote.get(&key)?;
                    self.metrics.counter("cache.index.remote.fetch").inc();
                    span.attr("tier", "remote");
                    if let Some(disk) = &self.disk {
                        disk.put(&key, blob.clone())?;
                    }
                    blob
                }
            },
        };
        let idx = self.registry.load(kind, &blob)?;
        self.mem.put(meta.id, idx.clone(), idx.memory_usage());
        // The full index supersedes any head-only partial.
        self.partial.lock_checked()?.remove(&meta.id);
        Ok(Some(idx))
    }

    /// Begin fetching a segment's index blob without blocking, so a later
    /// [`IndexCache::get`] finds the transfer already in flight and its
    /// latency overlaps with intervening work. Submit-only: requires a
    /// deferred-capable remote store (reactor-backed); on stores without
    /// deferral this is a no-op, as a synchronous fetch here would serialize
    /// rather than overlap. Never mutates the memory tier — `resident`
    /// reports false until the blob is consumed by a real `get`.
    ///
    /// Returns whether a new transfer was started.
    pub fn prefetch(&self, meta: &SegmentMeta) -> Result<bool> {
        if meta.index_kind.is_none()
            || !self.remote.supports_deferred()
            || self.mem.contains(&meta.id)
        {
            return Ok(false);
        }
        let key = meta.index_key();
        if let Some(disk) = &self.disk {
            if disk.exists(&key) {
                return Ok(false); // cheap local read; nothing to overlap
            }
        }
        let mut pending = self.pending.lock_checked()?;
        if pending.contains_key(&meta.id) {
            return Ok(false);
        }
        let p = self.remote.get_begin(&key)?;
        self.metrics.counter("cache.index.prefetch").inc();
        pending.insert(meta.id, p);
        Ok(true)
    }

    /// Tiered partial load (v3 blobs): fetch only the head prefix of the
    /// index blob, deserialize it into a head-only partial index, and start
    /// prefetching the full blob so the next `get` completes without a
    /// second cold stall. Returns `None` when the segment has no index or
    /// its blob is untiered (`index_head_bytes == 0`); returns the full
    /// index when it is already resident.
    pub fn get_head(&self, meta: &SegmentMeta) -> Result<Option<Arc<dyn VectorIndex>>> {
        let Some(kind) = meta.index_kind else { return Ok(None) };
        if let Some(idx) = self.mem.get(&meta.id) {
            self.metrics.counter("cache.index.mem.hit").inc();
            return Ok(Some(idx));
        }
        if meta.index_head_bytes == 0 || meta.index_head_bytes >= meta.index_bytes {
            return Ok(None);
        }
        if let Some(idx) = self.partial.lock_checked()?.get(&meta.id) {
            self.metrics.counter("cache.index.head.hit").inc();
            return Ok(Some(idx.clone()));
        }
        let mut span = self.metrics.tracer().span("cache.index.get_head");
        span.attr("segment", meta.id.raw());
        span.attr("head_bytes", meta.index_head_bytes);
        let prefix = self.remote.get_range(&meta.index_key(), 0, meta.index_head_bytes)?;
        let idx = self.registry.load_head(kind, &prefix)?;
        self.metrics.counter("cache.index.head.fetch").inc();
        self.partial.lock_checked()?.insert(meta.id, idx.clone());
        // Body follow-up: overlap the full-blob transfer with head serving.
        self.prefetch(meta)?;
        Ok(Some(idx))
    }

    /// Cache-aware preload (§II-D): pull the given segments' indexes into
    /// memory (and local disk) ahead of queries. Errors on individual
    /// segments are returned; successfully preloaded count is the payload.
    pub fn preload<'a>(&self, metas: impl IntoIterator<Item = &'a SegmentMeta>) -> Result<usize> {
        let mut n = 0;
        for meta in metas {
            if self.get(meta)?.is_some() {
                n += 1;
                self.metrics.counter("cache.index.preload").inc();
            }
        }
        Ok(n)
    }

    /// Drop a segment from memory and disk tiers (e.g. after compaction).
    pub fn invalidate(&self, meta: &SegmentMeta) {
        self.mem.remove(&meta.id);
        self.partial.lock().remove(&meta.id);
        // Dropping a PendingGet forgets its reactor ticket (no stranded op).
        self.pending.lock().remove(&meta.id);
        if let Some(disk) = &self.disk {
            let _ = disk.delete(&meta.index_key());
        }
    }

    /// Drop everything from the memory tier (simulates worker restart).
    pub fn clear_memory(&self) {
        self.mem.clear();
        self.partial.lock().clear();
        self.pending.lock().clear();
    }

    /// Bytes of index currently resident in memory.
    pub fn memory_used(&self) -> usize {
        self.mem.used_bytes()
    }

    /// Configured memory-tier capacity in bytes.
    pub fn memory_capacity(&self) -> usize {
        self.mem.capacity()
    }

    /// `(hits, misses, evictions)` of the memory tier (the LRU's own
    /// counters, not the `cache.index.*` registry counters).
    pub fn memory_stats(&self) -> (u64, u64, u64) {
        self.mem.stats()
    }

    /// Is a head-only partial index resident for this segment (tiered v3
    /// blob whose body has not landed yet)?
    pub fn head_resident(&self, seg: SegmentId) -> bool {
        self.partial.lock().contains_key(&seg)
    }

    /// Number of resident full indexes in the memory tier.
    pub fn resident_count(&self) -> usize {
        self.mem.len()
    }

    /// Number of head-only partial indexes currently held.
    pub fn head_count(&self) -> usize {
        self.partial.lock().len()
    }
}

/// Cached block entry classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Small, hot entries (segment metadata, sparse index pages).
    Meta,
    /// Column data blocks.
    Data,
}

/// Adaptive column-block cache with split metadata/data spaces.
pub struct BlockCache {
    meta_space: LruCache<String, Bytes>,
    data_space: LruCache<String, Bytes>,
    /// Queries reading more than this many rows bypass the data space
    /// entirely (anti-thrashing row limit, §IV-C).
    row_limit: usize,
    metrics: MetricsRegistry,
}

impl BlockCache {
    /// A cache with separate metadata/data capacities and a row limit.
    pub fn new(
        meta_capacity: usize,
        data_capacity: usize,
        row_limit: usize,
        metrics: MetricsRegistry,
    ) -> Self {
        Self {
            meta_space: LruCache::new(meta_capacity),
            data_space: LruCache::new(data_capacity),
            row_limit,
            metrics,
        }
    }

    /// The anti-thrashing row limit.
    pub fn row_limit(&self) -> usize {
        self.row_limit
    }

    fn space(&self, kind: BlockKind) -> &LruCache<String, Bytes> {
        match kind {
            BlockKind::Meta => &self.meta_space,
            BlockKind::Data => &self.data_space,
        }
    }

    /// Fetch a blob through the cache. `query_rows` is the number of rows the
    /// surrounding query will touch: when it exceeds the row limit the data
    /// space is bypassed (read-through, no insert) so bulk scans cannot evict
    /// the working set. Metadata reads always cache.
    pub fn get_or_fetch(
        &self,
        key: &str,
        kind: BlockKind,
        query_rows: usize,
        fetch: impl FnOnce() -> Result<Bytes>,
    ) -> Result<Bytes> {
        let (label, space_name) = match kind {
            BlockKind::Meta => ("cache.meta", "meta"),
            BlockKind::Data => ("cache.data", "data"),
        };
        let mut span = self.metrics.tracer().span("cache.block.get");
        span.attr("space", space_name);
        let bypass = kind == BlockKind::Data && query_rows > self.row_limit;
        if !bypass {
            if let Some(b) = self.space(kind).get(&key.to_string()) {
                self.metrics.counter(&format!("{label}.hit")).inc();
                span.attr("hit", true);
                return Ok(b);
            }
            self.metrics.counter(&format!("{label}.miss")).inc();
            span.attr("hit", false);
        } else {
            self.metrics.counter("cache.data.bypass").inc();
            span.attr("bypass", true);
        }
        let blob = fetch()?;
        if !bypass {
            self.space(kind).put(key.to_string(), blob.clone(), blob.len().max(1));
        }
        Ok(blob)
    }

    /// Remove every cached blob whose key starts with `prefix` (segment GC).
    pub fn invalidate_prefix(&self, _prefix: &str) {
        // Full clears are rare (compaction) and correctness-neutral, so the
        // simple implementation drops both spaces.
        self.meta_space.clear();
        self.data_space.clear();
    }

    /// Bytes cached in the data space.
    pub fn data_used(&self) -> usize {
        self.data_space.used_bytes()
    }

    /// Bytes cached in the metadata space.
    pub fn meta_used(&self) -> usize {
        self.meta_space.used_bytes()
    }

    /// Per-space `(name, used, capacity, entries, hits, misses, evictions)`
    /// rows for the `system.caches` table.
    pub fn space_stats(&self) -> Vec<(&'static str, usize, usize, usize, u64, u64, u64)> {
        [("block.meta", &self.meta_space), ("block.data", &self.data_space)]
            .into_iter()
            .map(|(name, space)| {
                let (hits, misses, evictions) = space.stats();
                (name, space.used_bytes(), space.capacity(), space.len(), hits, misses, evictions)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectstore::InMemoryObjectStore;
    use crate::schema::TableSchema;
    use crate::segment::Segment;
    use crate::value::{ColumnType, Value};
    use bh_common::{BhError, LatencyModel, SegmentId, VirtualClock};
    use bh_vector::{IndexKind, IndexSpec, Metric, SearchParams};
    use std::time::Duration;

    fn build_indexed_segment(
        store: &dyn ObjectStore,
        registry: &IndexRegistry,
        id: u64,
        n: usize,
    ) -> SegmentMeta {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(4))
            .with_vector_index("i", "emb", IndexKind::Flat, 4, Metric::L2);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::UInt64(i as u64), Value::Vector(vec![i as f32; 4])])
            .collect();
        let mut seg = Segment::from_rows(&schema, SegmentId(id), rows, vec![], None, 0).unwrap();
        // Build + persist the index.
        let spec = IndexSpec::new(IndexKind::Flat, 4, Metric::L2);
        let mut b = registry.create_builder(&spec).unwrap();
        let (data, _) = seg.columns["emb"].vector_data().unwrap();
        let ids: Vec<u64> = (0..n as u64).collect();
        b.add_with_ids(data, &ids).unwrap();
        let idx = b.finish().unwrap();
        let blob = idx.save_bytes().unwrap();
        seg.meta.index_kind = Some(IndexKind::Flat);
        seg.meta.index_bytes = blob.len() as u64;
        store.put(&seg.meta.index_key(), blob).unwrap();
        seg.persist(store).unwrap();
        seg.meta
    }

    #[test]
    fn hierarchy_promotes_and_hits() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let remote = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            LatencyModel::fixed(Duration::from_micros(1000)),
            metrics.clone(),
            "remote",
        ));
        let disk = Arc::new(InMemoryObjectStore::new(
            clock.clone(),
            LatencyModel::fixed(Duration::from_micros(10)),
            metrics.clone(),
            "disk",
        ));
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 1, 50);

        let cache = IndexCache::new(
            1 << 20,
            Some(disk.clone() as Arc<dyn ObjectStore>),
            remote.clone() as Arc<dyn ObjectStore>,
            registry,
            metrics.clone(),
        );
        assert!(!cache.resident(meta.id));

        // First get: mem miss, disk miss, remote fetch, promoted everywhere.
        let idx = cache.get(&meta).unwrap().unwrap();
        assert_eq!(idx.meta().len, 50);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);
        assert_eq!(metrics.counter_value("cache.index.disk.miss"), 1);
        assert!(cache.resident(meta.id));
        assert!(disk.exists(&meta.index_key()));

        // Second get: memory hit, no new remote traffic.
        cache.get(&meta).unwrap().unwrap();
        assert_eq!(metrics.counter_value("cache.index.mem.hit"), 1);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);

        // Clear memory (worker restart): next get hits the disk tier only.
        cache.clear_memory();
        cache.get(&meta).unwrap().unwrap();
        assert_eq!(metrics.counter_value("cache.index.disk.hit"), 1);
        assert_eq!(metrics.counter_value("cache.index.remote.fetch"), 1);
    }

    /// Satellite: lock poisoning must surface as `BhError::LockPoisoned`
    /// on the cache's fallible paths instead of propagating the panic, and
    /// a recovering access heals the lock so the cache serves again.
    #[test]
    fn poisoned_inflight_lock_is_reported_then_healed() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let remote = Arc::new(InMemoryObjectStore::new(
            clock,
            LatencyModel::fixed(Duration::from_micros(1)),
            metrics.clone(),
            "remote",
        ));
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 3, 10);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            metrics,
        );

        // Poison: a caller dies while holding the single-flight set.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = cache.inflight.lock();
            panic!("die holding the single-flight lock");
        }));
        assert!(died.is_err());

        // The fallible path reports the poisoned class by name…
        match cache.get(&meta) {
            Err(BhError::LockPoisoned(class)) => assert_eq!(class, "IDXCACHE_INFLIGHT"),
            Ok(_) => panic!("expected LockPoisoned, got Ok"),
            Err(other) => panic!("expected LockPoisoned, got {other}"),
        }
        // …a recovering access heals it, and service resumes.
        drop(cache.inflight.lock());
        let idx = cache.get(&meta).unwrap().unwrap();
        assert_eq!(idx.meta().len, 10);
    }

    /// Same policy on the tiered head path: a poisoned partial map fails
    /// `get_head` with the class name rather than a cascading panic.
    #[test]
    fn poisoned_partial_lock_fails_get_head_with_class_name() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let remote = Arc::new(InMemoryObjectStore::new(
            clock,
            LatencyModel::fixed(Duration::from_micros(1)),
            metrics.clone(),
            "remote",
        ));
        let registry = Arc::new(IndexRegistry::with_builtins());
        let mut meta = build_indexed_segment(remote.as_ref(), &registry, 4, 10);
        // Pretend the blob is tiered so get_head takes the partial path.
        meta.index_head_bytes = 1;
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            metrics,
        );
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = cache.partial.lock();
            panic!("die holding the partial map");
        }));
        assert!(died.is_err());
        assert!(matches!(
            cache.get_head(&meta),
            Err(BhError::LockPoisoned(c)) if c == "IDXCACHE_PARTIAL"
        ));
    }

    #[test]
    fn segment_without_index_returns_none() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let schema = TableSchema::new("t").with_column("id", ColumnType::UInt64);
        let seg = Segment::from_rows(
            &schema,
            SegmentId(9),
            vec![vec![Value::UInt64(1)]],
            vec![],
            None,
            0,
        )
        .unwrap();
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert!(cache.get(&seg.meta).unwrap().is_none());
    }

    #[test]
    fn preload_warms_cache_and_invalidate_clears() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let m1 = build_indexed_segment(remote.as_ref(), &registry, 1, 20);
        let m2 = build_indexed_segment(remote.as_ref(), &registry, 2, 20);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert_eq!(cache.preload([&m1, &m2]).unwrap(), 2);
        assert!(cache.resident(m1.id) && cache.resident(m2.id));
        cache.invalidate(&m1);
        assert!(!cache.resident(m1.id));
        assert!(cache.resident(m2.id));
    }

    #[test]
    fn loaded_index_actually_searches() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 3, 30);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        let idx = cache.get(&meta).unwrap().unwrap();
        let got = idx
            .search_with_filter(&[5.0, 5.0, 5.0, 5.0], 1, &SearchParams::default(), None)
            .unwrap();
        assert_eq!(got[0].id, 5);
    }

    fn build_tiered_segment(
        store: &dyn ObjectStore,
        registry: &IndexRegistry,
        id: u64,
        n: usize,
    ) -> SegmentMeta {
        let schema = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(16))
            .with_vector_index("i", "emb", IndexKind::Hnsw, 16, Metric::L2);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..16).map(|d| ((i * 31 + d * 7) % 97) as f32).collect();
                vec![Value::UInt64(i as u64), Value::Vector(v)]
            })
            .collect();
        let mut seg = Segment::from_rows(&schema, SegmentId(id), rows, vec![], None, 0).unwrap();
        let spec = IndexSpec::new(IndexKind::Hnsw, 16, Metric::L2);
        let mut b = registry.create_builder(&spec).unwrap();
        let (data, _) = seg.columns["emb"].vector_data().unwrap();
        let ids: Vec<u64> = (0..n as u64).collect();
        b.add_with_ids(data, &ids).unwrap();
        let idx = b.finish().unwrap();
        let (head, body) = idx.save_bytes_tiered().unwrap().unwrap();
        let blob = bh_vector::tiered::frame(&head, &body);
        seg.meta.index_kind = Some(IndexKind::Hnsw);
        seg.meta.index_bytes = blob.len() as u64;
        seg.meta.index_head_bytes = bh_vector::tiered::head_prefix_len(head.len() as u64);
        store.put(&seg.meta.index_key(), blob).unwrap();
        seg.persist(store).unwrap();
        seg.meta
    }

    #[test]
    fn single_flight_dedups_concurrent_gets() {
        use bh_common::RealClock;
        let metrics = MetricsRegistry::new();
        // Real clock so the fetch genuinely takes long enough for the other
        // threads to arrive and park on the single-flight condvar.
        let remote = Arc::new(InMemoryObjectStore::new(
            RealClock::shared(),
            LatencyModel::fixed(Duration::from_millis(60)),
            metrics.clone(),
            "remote",
        ));
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 1, 40);
        let cache = Arc::new(IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            metrics.clone(),
        ));
        std::thread::scope(|s| {
            let leader = {
                let (cache, meta) = (cache.clone(), meta.clone());
                s.spawn(move || cache.get(&meta).unwrap().unwrap())
            };
            // Give the leader a head start into its 60ms fetch.
            std::thread::sleep(Duration::from_millis(15));
            let followers: Vec<_> = (0..3)
                .map(|_| {
                    let (cache, meta) = (cache.clone(), meta.clone());
                    s.spawn(move || cache.get(&meta).unwrap().unwrap())
                })
                .collect();
            leader.join().unwrap();
            for f in followers {
                assert_eq!(f.join().unwrap().meta().len, 40);
            }
        });
        assert_eq!(
            metrics.counter_value("cache.index.remote.fetch"),
            1,
            "one fetch serves every concurrent caller"
        );
        assert!(metrics.counter_value("cache.index.singleflight.wait") >= 3);
        assert_eq!(metrics.counter_value("cache.index.mem.hit"), 3);
    }

    #[test]
    fn prefetch_overlaps_and_get_consumes() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        let reactor = Arc::new(bh_common::Reactor::new(clock.clone()));
        let remote = Arc::new(
            InMemoryObjectStore::new(
                clock.clone(),
                LatencyModel::fixed(Duration::from_micros(500)),
                metrics.clone(),
                "remote",
            )
            .with_reactor(reactor.clone()),
        );
        let registry = Arc::new(IndexRegistry::with_builtins());
        let m1 = build_indexed_segment(remote.as_ref(), &registry, 1, 20);
        let m2 = build_indexed_segment(remote.as_ref(), &registry, 2, 20);
        let after_setup = clock.now_nanos();

        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            metrics.clone(),
        );
        // Submissions start both transfers without advancing the clock and
        // without making anything resident.
        assert!(cache.prefetch(&m1).unwrap());
        assert!(cache.prefetch(&m2).unwrap());
        assert!(!cache.prefetch(&m1).unwrap(), "already in flight");
        assert_eq!(clock.now_nanos(), after_setup);
        assert!(!cache.resident(m1.id) && !cache.resident(m2.id));

        // Both gets consume the in-flight transfers: total simulated time is
        // max(cost, cost) = 500µs, not the 1ms two serial fetches would take.
        cache.get(&m1).unwrap().unwrap();
        cache.get(&m2).unwrap().unwrap();
        assert_eq!(clock.now_nanos() - after_setup, 500_000);
        assert_eq!(metrics.counter_value("cache.index.prefetch"), 2);
        assert_eq!(metrics.counter_value("cache.index.prefetch.hit"), 2);
        assert!(cache.resident(m1.id) && cache.resident(m2.id));
    }

    #[test]
    fn prefetch_is_noop_without_deferred_store() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 1, 10);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert!(!cache.prefetch(&meta).unwrap());
        assert!(cache.get(&meta).unwrap().is_some());
    }

    #[test]
    fn get_head_serves_partial_then_full_supersedes() {
        let clock = VirtualClock::shared();
        let metrics = MetricsRegistry::new();
        // Per-byte-only model so charged time measures transferred bytes.
        let reactor = Arc::new(bh_common::Reactor::new(clock.clone()));
        let remote = Arc::new(
            InMemoryObjectStore::new(
                clock.clone(),
                LatencyModel::new(Duration::ZERO, Duration::from_nanos(10)),
                metrics.clone(),
                "remote",
            )
            .with_reactor(reactor),
        );
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_tiered_segment(remote.as_ref(), &registry, 7, 600);
        let t0 = clock.now_nanos();

        let cache = IndexCache::new(
            1 << 24,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            metrics.clone(),
        );
        let head = cache.get_head(&meta).unwrap().unwrap();
        assert!(head.is_partial());
        assert!(head.head_servable());
        assert_eq!(head.meta().len, 600);
        assert!(!cache.resident(meta.id), "head serving is not residency");
        // The head fetch transferred only the head prefix (the body prefetch
        // was submitted but not yet waited on).
        let head_cost = clock.now_nanos() - t0;
        assert_eq!(head_cost, meta.index_head_bytes * 10);
        assert!(meta.index_head_bytes * 10 <= meta.index_bytes, "head ≤ 10% of blob");
        // Partial serves real neighbors.
        let q: Vec<f32> = (0..16).map(|d| ((31 + d * 7) % 97) as f32).collect();
        let got = head.search_with_filter(&q, 3, &SearchParams::default(), None).unwrap();
        assert!(!got.is_empty());
        // Second head read hits the partial cache.
        cache.get_head(&meta).unwrap().unwrap();
        assert_eq!(metrics.counter_value("cache.index.head.fetch"), 1);
        assert_eq!(metrics.counter_value("cache.index.head.hit"), 1);

        // A full get consumes the body prefetch and supersedes the partial.
        let full = cache.get(&meta).unwrap().unwrap();
        assert!(!full.is_partial());
        assert!(cache.resident(meta.id));
        assert_eq!(metrics.counter_value("cache.index.prefetch.hit"), 1);
        let after_full = cache.get_head(&meta).unwrap().unwrap();
        assert!(!after_full.is_partial(), "resident full index wins");
    }

    #[test]
    fn get_head_returns_none_for_untiered_blob() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let meta = build_indexed_segment(remote.as_ref(), &registry, 4, 25);
        assert_eq!(meta.index_head_bytes, 0);
        let cache = IndexCache::new(
            1 << 20,
            None,
            remote as Arc<dyn ObjectStore>,
            registry,
            MetricsRegistry::new(),
        );
        assert!(cache.get_head(&meta).unwrap().is_none());
    }

    #[test]
    fn block_cache_split_spaces() {
        let metrics = MetricsRegistry::new();
        let cache = BlockCache::new(1 << 10, 1 << 10, 100, metrics.clone());
        let fetched = std::cell::Cell::new(0);
        let fetch = |data: &'static [u8]| {
            fetched.set(fetched.get() + 1);
            Ok(Bytes::from_static(data))
        };
        cache.get_or_fetch("k1", BlockKind::Data, 10, || fetch(b"datablock")).unwrap();
        cache.get_or_fetch("k1", BlockKind::Data, 10, || fetch(b"datablock")).unwrap();
        assert_eq!(fetched.get(), 1, "second read must hit");
        assert_eq!(metrics.counter_value("cache.data.hit"), 1);
        // Meta space is independent: same key in meta space still misses.
        cache.get_or_fetch("k1", BlockKind::Meta, 10, || fetch(b"m")).unwrap();
        assert_eq!(fetched.get(), 2);
        assert!(cache.meta_used() > 0 && cache.data_used() > 0);
    }

    #[test]
    fn block_cache_row_limit_bypasses_data_space() {
        let metrics = MetricsRegistry::new();
        let cache = BlockCache::new(1 << 10, 1 << 10, 100, metrics.clone());
        // Over the row limit: fetch but do not cache.
        cache
            .get_or_fetch("big", BlockKind::Data, 1000, || Ok(Bytes::from_static(b"x")))
            .unwrap();
        assert_eq!(metrics.counter_value("cache.data.bypass"), 1);
        assert_eq!(cache.data_used(), 0);
        // A small query for the same key misses (it was never cached).
        cache
            .get_or_fetch("big", BlockKind::Data, 1, || Ok(Bytes::from_static(b"x")))
            .unwrap();
        assert_eq!(metrics.counter_value("cache.data.miss"), 1);
        assert!(cache.data_used() > 0);
    }

    #[test]
    fn block_cache_data_eviction_does_not_touch_meta() {
        let cache = BlockCache::new(1 << 10, 64, 10_000, MetricsRegistry::new());
        cache.get_or_fetch("m", BlockKind::Meta, 1, || Ok(Bytes::from_static(b"meta"))).unwrap();
        // Flood the data space well past its 64-byte capacity.
        for i in 0..50 {
            let key = format!("d{i}");
            cache
                .get_or_fetch(&key, BlockKind::Data, 1, || Ok(Bytes::from(vec![0u8; 32])))
                .unwrap();
        }
        assert!(cache.data_used() <= 64);
        // Metadata survived the flood.
        let hit = std::cell::Cell::new(true);
        cache
            .get_or_fetch("m", BlockKind::Meta, 1, || {
                hit.set(false);
                Ok(Bytes::new())
            })
            .unwrap();
        assert!(hit.get(), "metadata was evicted by data-space pressure");
    }
}
