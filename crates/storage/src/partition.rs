//! Scalar and semantic partitioning (§IV-B).
//!
//! During ingestion rows are grouped by **(scalar partition key, semantic
//! bucket)** and each group becomes its own segment(s):
//!
//! * the scalar key is the tuple of `PARTITION BY` column values,
//! * the semantic bucket is the nearest of `CLUSTER BY … INTO n BUCKETS`
//!   k-means centroids, trained once on the first sizable ingest batch.
//!
//! Both keys land in [`crate::segment::SegmentMeta`], giving the scheduler
//! two independent pruning axes: predicate-vs-partition-key and
//! query-vector-vs-bucket-centroid similarity.

use crate::schema::TableSchema;
use crate::segment::Row;
use crate::value::Value;
use bh_common::{BhError, Result};
use bh_vector::kmeans::{train_kmeans, KMeans, KMeansParams};
use std::collections::BTreeMap;

/// A trained semantic clusterer for one table.
#[derive(Debug, Clone)]
pub struct SemanticClusterer {
    /// The trained k-means codebook (one centroid per bucket).
    pub km: KMeans,
}

impl SemanticClusterer {
    /// Train on a batch of embeddings (row-major). `buckets` is clamped to
    /// the batch size by k-means.
    pub fn train(embeddings: &[f32], dim: usize, buckets: usize, seed: u64) -> Result<Self> {
        let km = train_kmeans(
            embeddings,
            dim,
            &KMeansParams { k: buckets, max_iters: 10, seed, sample_limit: 8192 },
        )?;
        Ok(Self { km })
    }

    /// Bucket of one embedding.
    pub fn assign(&self, embedding: &[f32]) -> u32 {
        self.km.assign(embedding) as u32
    }

    /// Bucket centroids ranked by distance to a query vector — the semantic
    /// pruning order used at scheduling time.
    pub fn ranked_buckets(&self, query: &[f32]) -> Vec<(u32, f32)> {
        self.km
            .nearest_centroids(query, self.km.k)
            .into_iter()
            .map(|(c, d)| (c as u32, d))
            .collect()
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.km.k
    }
}

/// The grouping key of one ingest group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupKey {
    /// Canonical JSON encoding of the partition-key values (used as a map
    /// key because `Value` contains floats).
    pub partition_json: String,
    /// Semantic bucket, when the table is clustered.
    pub bucket: Option<u32>,
}

/// One group of rows destined for the same segment chain.
#[derive(Debug)]
pub struct RowGroup {
    /// Shared partition-key values.
    pub partition_key: Vec<Value>,
    /// Shared semantic bucket.
    pub bucket: Option<u32>,
    /// The group's rows.
    pub rows: Vec<Row>,
}

/// Extract the partition-key values of one row.
pub fn partition_key_of(schema: &TableSchema, row: &Row) -> Result<Vec<Value>> {
    schema
        .partition_by
        .iter()
        .map(|c| {
            let idx = schema
                .column_index(c)
                .ok_or_else(|| BhError::NotFound(format!("partition column {c}")))?;
            Ok(row[idx].clone())
        })
        .collect()
}

/// Group rows by (partition key, semantic bucket).
pub fn group_rows(
    schema: &TableSchema,
    clusterer: Option<&SemanticClusterer>,
    rows: Vec<Row>,
) -> Result<Vec<RowGroup>> {
    let vec_idx = match (&schema.cluster_by, clusterer) {
        (Some(cb), Some(_)) => Some(
            schema
                .column_index(&cb.column)
                .ok_or_else(|| BhError::NotFound(format!("cluster column {}", cb.column)))?,
        ),
        _ => None,
    };
    let mut groups: BTreeMap<GroupKey, RowGroup> = BTreeMap::new();
    for row in rows {
        let pk = partition_key_of(schema, &row)?;
        let bucket = match (vec_idx, clusterer) {
            (Some(vi), Some(cl)) => {
                let emb = row[vi]
                    .as_vector()
                    .ok_or_else(|| BhError::InvalidArgument("cluster column not a vector".into()))?;
                Some(cl.assign(emb))
            }
            _ => None,
        };
        let key = GroupKey {
            partition_json: serde_json::to_string(&pk)
                .map_err(|e| BhError::Serde(e.to_string()))?,
            bucket,
        };
        groups
            .entry(key)
            .or_insert_with(|| RowGroup { partition_key: pk, bucket, rows: Vec::new() })
            .rows
            .push(row);
    }
    Ok(groups.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;
    use bh_common::rng::rng;
    use bh_vector::{IndexKind, Metric};
    use rand::Rng;

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(4))
            .with_partition_by(&["label"])
            .with_cluster_by("emb", 3)
            .with_vector_index("i", "emb", IndexKind::Flat, 4, Metric::L2)
    }

    fn mk_rows(n: usize, seed: u64) -> Vec<Row> {
        let mut r = rng(seed);
        (0..n)
            .map(|i| {
                let center = (i % 3) as f32 * 10.0;
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 2)),
                    Value::Vector((0..4).map(|_| center + r.gen_range(-0.5..0.5)).collect()),
                ]
            })
            .collect()
    }

    #[test]
    fn groups_by_scalar_key_only_without_clusterer() {
        let s = schema();
        let groups = group_rows(&s, None, mk_rows(20, 1)).unwrap();
        assert_eq!(groups.len(), 2); // l0, l1
        let total: usize = groups.iter().map(|g| g.rows.len()).sum();
        assert_eq!(total, 20);
        for g in &groups {
            assert!(g.bucket.is_none());
            assert_eq!(g.partition_key.len(), 1);
        }
    }

    #[test]
    fn groups_by_scalar_and_semantic() {
        let s = schema();
        let rows = mk_rows(60, 2);
        // Train the clusterer on the embeddings.
        let embs: Vec<f32> = rows.iter().flat_map(|r| r[2].as_vector().unwrap().to_vec()).collect();
        let cl = SemanticClusterer::train(&embs, 4, 3, 0).unwrap();
        let groups = group_rows(&s, Some(&cl), rows).unwrap();
        // 2 labels × 3 well-separated clusters = 6 groups.
        assert_eq!(groups.len(), 6);
        // Same-bucket rows must be semantically close: all rows of a group
        // assign to the group's bucket.
        for g in &groups {
            for row in &g.rows {
                assert_eq!(cl.assign(row[2].as_vector().unwrap()), g.bucket.unwrap());
            }
        }
    }

    #[test]
    fn ranked_buckets_ascending() {
        let rows = mk_rows(60, 3);
        let embs: Vec<f32> = rows.iter().flat_map(|r| r[2].as_vector().unwrap().to_vec()).collect();
        let cl = SemanticClusterer::train(&embs, 4, 3, 0).unwrap();
        let q = vec![0.0f32; 4]; // near cluster center 0
        let ranked = cl.ranked_buckets(&q);
        assert_eq!(ranked.len(), 3);
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(ranked[0].0, cl.assign(&q));
    }

    #[test]
    fn no_partition_columns_yields_single_group() {
        let s = TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("emb", ColumnType::Vector(2));
        let rows: Vec<Row> =
            (0..5).map(|i| vec![Value::UInt64(i), Value::Vector(vec![0.0, 0.0])]).collect();
        let groups = group_rows(&s, None, rows).unwrap();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].partition_key.is_empty());
    }

    #[test]
    fn buckets_clamped_by_training_size() {
        let cl = SemanticClusterer::train(&[0.0, 0.0, 1.0, 1.0], 2, 16, 0).unwrap();
        assert_eq!(cl.buckets(), 2);
    }
}
