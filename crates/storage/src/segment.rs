//! Immutable data segments and their persistence layout.
//!
//! A segment is the unit of everything in BlendHouse's design: it is written
//! once at ingest/compaction, gets exactly one vector index (§III-B), is the
//! unit of consistent-hash scheduling (§II-C), of semantic/scalar pruning
//! (§IV-B), and of cache residency (§II-D).
//!
//! ## Object-store layout
//!
//! ```text
//! tables/<table>/seg-<id>/meta            — JSON metadata (stats, partition)
//! tables/<table>/seg-<id>/col/<name>/<b>  — column block b (BLOCK_ROWS rows)
//! tables/<table>/seg-<id>/index           — serialized vector index
//! ```
//!
//! Column data is stored per **block**, so the fine-grained read path fetches
//! only the blocks covering requested row offsets (the read-amplification
//! optimization of §IV-C).

use crate::column::{ColumnData, BLOCK_ROWS};
use crate::schema::TableSchema;
use crate::stats::ColumnStats;
use crate::value::Value;
use bh_common::{BhError, Result, SegmentId};
use bh_vector::IndexKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row as a value list, in schema column order.
pub type Row = Vec<Value>;

/// Segment metadata — everything the scheduler and pruner need without
/// touching column data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Segment id (stable hash/blob key).
    pub id: SegmentId,
    /// Owning table.
    pub table: String,
    /// Rows in the segment (visible or not).
    pub row_count: usize,
    /// LSM level: 0 for fresh ingest, incremented by compaction.
    pub level: u8,
    /// Values of the partition-key columns shared by all rows.
    pub partition_key: Vec<Value>,
    /// Semantic bucket id when the table is `CLUSTER BY`ed.
    pub cluster_bucket: Option<u32>,
    /// Mean embedding of the segment's vectors (semantic pruning key).
    pub centroid: Option<Vec<f32>>,
    /// Per-column min/max for zone-map pruning.
    pub column_stats: BTreeMap<String, ColumnStats>,
    /// Kind of the per-segment vector index, if one was built.
    pub index_kind: Option<IndexKind>,
    /// Size of the serialized index blob (cache weight / transfer size).
    pub index_bytes: u64,
    /// Bytes of the index blob's *head* prefix when the blob uses the tiered
    /// v3 container (container prefix + head section). `0` means the blob is
    /// an untiered v2 whole-index and partial loading is unavailable.
    /// `#[serde(default)]` keeps pre-tiered metadata blobs readable.
    #[serde(default)]
    pub index_head_bytes: u64,
}

impl SegmentMeta {
    /// Object-store key prefix for this segment.
    pub fn prefix(&self) -> String {
        format!("tables/{}/{}", self.table, self.id.key())
    }

    /// Key of the JSON metadata blob.
    pub fn meta_key(&self) -> String {
        format!("{}/meta", self.prefix())
    }

    /// Key of the serialized vector-index blob.
    pub fn index_key(&self) -> String {
        format!("{}/index", self.prefix())
    }

    /// Key of one column block.
    pub fn block_key(&self, column: &str, block: usize) -> String {
        format!("{}/col/{column}/{block}", self.prefix())
    }

    /// Number of serialized blocks per column.
    pub fn block_count(&self) -> usize {
        self.row_count.div_ceil(BLOCK_ROWS)
    }
}

// ColumnStats needs serde for the meta blob.
impl Serialize for ColumnStats {
    fn serialize<S: serde::Serializer>(&self, s: S) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = s.serialize_struct("ColumnStats", 3)?;
        st.serialize_field("min", &self.min)?;
        st.serialize_field("max", &self.max)?;
        st.serialize_field("rows", &self.rows)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ColumnStats {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            min: Option<Value>,
            max: Option<Value>,
            rows: usize,
        }
        let raw = Raw::deserialize(d)?;
        Ok(ColumnStats { min: raw.min, max: raw.max, rows: raw.rows })
    }
}

/// A fully materialized segment: metadata plus column data.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Descriptive metadata.
    pub meta: SegmentMeta,
    /// Column name → data.
    pub columns: BTreeMap<String, ColumnData>,
}

impl Segment {
    /// Build a segment from rows. Rows are sorted by the schema's `ORDER BY`
    /// key; column stats and the vector centroid are computed here.
    pub fn from_rows(
        schema: &TableSchema,
        id: SegmentId,
        mut rows: Vec<Row>,
        partition_key: Vec<Value>,
        cluster_bucket: Option<u32>,
        level: u8,
    ) -> Result<Segment> {
        for row in &rows {
            schema.validate_row(row)?;
        }
        // Sort by ORDER BY key (lexicographic over key columns).
        if !schema.order_by.is_empty() {
            let key_idx: Vec<usize> = schema
                .order_by
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| BhError::NotFound(format!("order key {c}")))
                })
                .collect::<Result<_>>()?;
            rows.sort_by(|a, b| {
                for &i in &key_idx {
                    match a[i].partial_cmp_scalar(&b[i]) {
                        Some(std::cmp::Ordering::Equal) | None => continue,
                        Some(o) => return o,
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let mut columns: BTreeMap<String, ColumnData> = schema
            .columns
            .iter()
            .map(|c| {
                let ty = match c.ty {
                    crate::value::ColumnType::Vector(0) => crate::value::ColumnType::Vector(
                        schema.index_on(&c.name).map(|i| i.spec.dim).unwrap_or(0),
                    ),
                    t => t,
                };
                (c.name.clone(), ColumnData::empty(ty))
            })
            .collect();
        let mut stats: BTreeMap<String, ColumnStats> = BTreeMap::new();
        for row in &rows {
            for (cell, def) in row.iter().zip(&schema.columns) {
                columns
                    .get_mut(&def.name)
                    .ok_or_else(|| {
                        BhError::Internal(format!("column {} missing from build map", def.name))
                    })?
                    .push(cell)
                    .map_err(|e| BhError::InvalidArgument(format!("column {}: {e}", def.name)))?;
                if def.ty.is_ordered_scalar() {
                    stats.entry(def.name.clone()).or_default().observe(cell);
                }
            }
        }

        // Centroid of the (sole) vector column, for semantic pruning.
        let centroid = schema.sole_vector_column().and_then(|vc| {
            let col = &columns[&vc.name];
            let (data, dim) = col.vector_data()?;
            if dim == 0 || data.is_empty() {
                return None;
            }
            let n = data.len() / dim;
            let mut c = vec![0.0f64; dim];
            for i in 0..n {
                for d in 0..dim {
                    c[d] += data[i * dim + d] as f64;
                }
            }
            Some(c.iter().map(|&x| (x / n as f64) as f32).collect())
        });

        let meta = SegmentMeta {
            id,
            table: schema.name.clone(),
            row_count: rows.len(),
            level,
            partition_key,
            cluster_bucket,
            centroid,
            column_stats: stats,
            index_kind: None,
            index_bytes: 0,
            index_head_bytes: 0,
        };
        Ok(Segment { meta, columns })
    }

    /// Number of rows (visible or not).
    pub fn row_count(&self) -> usize {
        self.meta.row_count
    }

    /// Access one column's data.
    pub fn column(&self, name: &str) -> Result<&ColumnData> {
        self.columns
            .get(name)
            .ok_or_else(|| BhError::NotFound(format!("column {name} in {}", self.meta.id)))
    }

    /// Materialize one row as a column→value map (predicate evaluation).
    pub fn row_map(&self, offset: usize) -> BTreeMap<String, Value> {
        self.columns.iter().map(|(k, c)| (k.clone(), c.get(offset))).collect()
    }

    /// Extract one full row in schema order.
    pub fn row(&self, schema: &TableSchema, offset: usize) -> Row {
        schema.columns.iter().map(|c| self.columns[&c.name].get(offset)).collect()
    }

    /// Total in-memory bytes of column data.
    pub fn memory_bytes(&self) -> usize {
        self.columns.values().map(|c| c.memory_bytes()).sum()
    }

    /// Persist all column blocks and metadata to `store`.
    pub fn persist(&self, store: &dyn crate::objectstore::ObjectStore) -> Result<()> {
        for (name, col) in &self.columns {
            for b in 0..col.block_count() {
                store.put(&self.meta.block_key(name, b), col.encode_block(b))?;
            }
        }
        let meta_json = serde_json::to_vec(&self.meta)
            .map_err(|e| BhError::Serde(format!("segment meta encode: {e}")))?;
        store.put(&self.meta.meta_key(), meta_json.into())?;
        Ok(())
    }

    /// Load segment metadata from the store.
    pub fn load_meta(
        store: &dyn crate::objectstore::ObjectStore,
        table: &str,
        id: SegmentId,
    ) -> Result<SegmentMeta> {
        let key = format!("tables/{table}/{}/meta", id.key());
        let blob = store.get(&key)?;
        serde_json::from_slice(&blob).map_err(|e| BhError::Serde(format!("segment meta: {e}")))
    }

    /// Load one full column (all blocks) from the store.
    pub fn load_column(
        store: &dyn crate::objectstore::ObjectStore,
        schema: &TableSchema,
        meta: &SegmentMeta,
        name: &str,
    ) -> Result<ColumnData> {
        let def = schema
            .column(name)
            .ok_or_else(|| BhError::NotFound(format!("column {name}")))?;
        let ty = match def.ty {
            crate::value::ColumnType::Vector(0) => crate::value::ColumnType::Vector(
                schema.index_on(name).map(|i| i.spec.dim).unwrap_or(0),
            ),
            t => t,
        };
        let mut out = ColumnData::empty(ty);
        for b in 0..meta.block_count() {
            let blob = store.get(&meta.block_key(name, b))?;
            let part = ColumnData::decode_block(ty, &blob)?;
            out.extend_from(&part)?;
        }
        if out.len() != meta.row_count {
            return Err(BhError::Storage(format!(
                "column {name} of {} decoded {} rows, meta says {}",
                meta.id,
                out.len(),
                meta.row_count
            )));
        }
        Ok(out)
    }

    /// Load a whole segment (all columns).
    pub fn load(
        store: &dyn crate::objectstore::ObjectStore,
        schema: &TableSchema,
        meta: &SegmentMeta,
    ) -> Result<Segment> {
        let mut columns = BTreeMap::new();
        for def in &schema.columns {
            columns.insert(def.name.clone(), Self::load_column(store, schema, meta, &def.name)?);
        }
        Ok(Segment { meta: meta.clone(), columns })
    }

    /// Delete all blobs of a segment (compaction garbage collection).
    pub fn delete_blobs(
        store: &dyn crate::objectstore::ObjectStore,
        meta: &SegmentMeta,
    ) -> Result<()> {
        for key in store.list(&meta.prefix()) {
            store.delete(&key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectstore::{InMemoryObjectStore, ObjectStore};
    use crate::value::ColumnType;
    use bh_vector::Metric;

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("emb", ColumnType::Vector(4))
            .with_order_by(&["id"])
            .with_vector_index("idx", "emb", bh_vector::IndexKind::Flat, 4, Metric::L2)
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::UInt64((n - i) as u64), // reverse order to exercise sorting
                    Value::Str(format!("l{}", i % 3)),
                    Value::Vector(vec![i as f32; 4]),
                ]
            })
            .collect()
    }

    #[test]
    fn from_rows_sorts_and_computes_stats() {
        let s = schema();
        let seg = Segment::from_rows(&s, SegmentId(1), rows(10), vec![], None, 0).unwrap();
        assert_eq!(seg.row_count(), 10);
        // Sorted ascending by id.
        assert_eq!(seg.columns["id"].get(0), Value::UInt64(1));
        assert_eq!(seg.columns["id"].get(9), Value::UInt64(10));
        let st = &seg.meta.column_stats["id"];
        assert_eq!(st.min, Some(Value::UInt64(1)));
        assert_eq!(st.max, Some(Value::UInt64(10)));
        // Vector column has no scalar stats but yields a centroid.
        assert!(!seg.meta.column_stats.contains_key("emb"));
        let c = seg.meta.centroid.as_ref().unwrap();
        assert_eq!(c.len(), 4);
        assert!((c[0] - 4.5).abs() < 1e-5);
    }

    #[test]
    fn invalid_row_rejected() {
        let s = schema();
        let bad = vec![vec![Value::UInt64(1), Value::Str("x".into()), Value::Vector(vec![0.0])]];
        assert!(Segment::from_rows(&s, SegmentId(1), bad, vec![], None, 0).is_err());
    }

    #[test]
    fn empty_segment_is_fine() {
        let s = schema();
        let seg = Segment::from_rows(&s, SegmentId(2), vec![], vec![], None, 0).unwrap();
        assert_eq!(seg.row_count(), 0);
        assert!(seg.meta.centroid.is_none());
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let s = schema();
        let store = InMemoryObjectStore::for_tests();
        let seg = Segment::from_rows(&s, SegmentId(3), rows(2500), vec![], Some(7), 1).unwrap();
        seg.persist(store.as_ref()).unwrap();

        let meta = Segment::load_meta(store.as_ref(), "t", SegmentId(3)).unwrap();
        assert_eq!(meta, seg.meta);
        assert_eq!(meta.cluster_bucket, Some(7));
        assert_eq!(meta.block_count(), 3); // 2500 rows / 1024

        let loaded = Segment::load(store.as_ref(), &s, &meta).unwrap();
        assert_eq!(loaded.columns, seg.columns);
    }

    #[test]
    fn load_single_column() {
        let s = schema();
        let store = InMemoryObjectStore::for_tests();
        let seg = Segment::from_rows(&s, SegmentId(4), rows(100), vec![], None, 0).unwrap();
        seg.persist(store.as_ref()).unwrap();
        let col = Segment::load_column(store.as_ref(), &s, &seg.meta, "label").unwrap();
        assert_eq!(col.len(), 100);
        assert!(Segment::load_column(store.as_ref(), &s, &seg.meta, "nope").is_err());
    }

    #[test]
    fn delete_blobs_removes_everything() {
        let s = schema();
        let store = InMemoryObjectStore::for_tests();
        let seg = Segment::from_rows(&s, SegmentId(5), rows(10), vec![], None, 0).unwrap();
        seg.persist(store.as_ref()).unwrap();
        assert!(!store.list(&seg.meta.prefix()).is_empty());
        Segment::delete_blobs(store.as_ref(), &seg.meta).unwrap();
        assert!(store.list(&seg.meta.prefix()).is_empty());
    }

    #[test]
    fn row_extraction() {
        let s = schema();
        let seg = Segment::from_rows(&s, SegmentId(6), rows(5), vec![], None, 0).unwrap();
        let r = seg.row(&s, 0);
        assert_eq!(r[0], Value::UInt64(1));
        let m = seg.row_map(0);
        assert_eq!(m["id"], Value::UInt64(1));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn meta_json_roundtrip() {
        let s = schema();
        let seg = Segment::from_rows(
            &s,
            SegmentId(7),
            rows(3),
            vec![Value::Str("p".into())],
            Some(2),
            3,
        )
        .unwrap();
        let json = serde_json::to_string(&seg.meta).unwrap();
        let back: SegmentMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, seg.meta);
    }
}
