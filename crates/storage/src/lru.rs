//! Byte-weighted LRU cache with O(1) operations.
//!
//! Backing structure: a slot arena forming an intrusive doubly-linked list
//! (most-recent at head) plus a `HashMap` from key to slot index. Entries
//! carry a byte weight; inserting evicts from the tail until the configured
//! capacity holds. Used by both layers of the paper's hierarchical design —
//! the in-memory vector-index cache and the block cache (with separate
//! instances for metadata and data, §II-D / §IV-C).

use bh_common::metrics::Counter;
use bh_common::MetricsRegistry;
use bh_common::sync::{classes, Mutex};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    weight: usize,
    prev: usize,
    next: usize,
}

struct Inner<K, V> {
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    map: HashMap<K, usize>,
    head: usize,
    tail: usize,
    used: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe byte-weighted LRU.
pub struct LruCache<K: Eq + Hash + Clone, V: Clone> {
    inner: Mutex<Inner<K, V>>,
    /// Registry-backed `cache.<label>.{hit,miss}` counters, if attached.
    hit_ctr: Option<Arc<Counter>>,
    miss_ctr: Option<Arc<Counter>>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// `capacity` is in weight units (bytes). Zero capacity caches nothing.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(&classes::LRU_INNER, Inner {
                slots: Vec::new(),
                free: Vec::new(),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                used: 0,
                capacity,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            hit_ctr: None,
            miss_ctr: None,
        }
    }

    /// A cache that also reports hits/misses to the registry under the
    /// standardized `cache.<label>.{hit,miss}` counter names (DESIGN.md §9).
    pub fn with_metrics(capacity: usize, metrics: &MetricsRegistry, label: &str) -> Self {
        let mut c = Self::new(capacity);
        c.hit_ctr = Some(metrics.counter(&format!("cache.{label}.hit")));
        c.miss_ctr = Some(metrics.counter(&format!("cache.{label}.miss")));
        c
    }

    /// Look up and mark as most-recently used.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut g = self.inner.lock();
        match g.map.get(key).copied() {
            Some(idx) => {
                g.hits += 1;
                if let Some(c) = &self.hit_ctr {
                    c.inc();
                }
                g.unlink(idx);
                g.push_front(idx);
                Some(g.slots[idx].value.clone())
            }
            None => {
                g.misses += 1;
                if let Some(c) = &self.miss_ctr {
                    c.inc();
                }
                None
            }
        }
    }

    /// Peek without touching recency or hit counters.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Insert (or replace) an entry of the given weight, evicting LRU entries
    /// as needed. Entries heavier than the whole capacity are not cached.
    pub fn put(&self, key: K, value: V, weight: usize) {
        let mut g = self.inner.lock();
        if weight > g.capacity {
            // Too large to ever fit — drop, and drop any stale previous entry.
            if let Some(idx) = g.map.remove(&key) {
                g.unlink(idx);
                g.used -= g.slots[idx].weight;
                g.free.push(idx);
            }
            return;
        }
        if let Some(idx) = g.map.get(&key).copied() {
            g.used = g.used - g.slots[idx].weight + weight;
            g.slots[idx].value = value;
            g.slots[idx].weight = weight;
            g.unlink(idx);
            g.push_front(idx);
        } else {
            let idx = g.alloc(key.clone(), value, weight);
            g.map.insert(key, idx);
            g.push_front(idx);
            g.used += weight;
        }
        while g.used > g.capacity {
            g.evict_tail();
        }
    }

    /// Remove an entry.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut g = self.inner.lock();
        let idx = g.map.remove(key)?;
        g.unlink(idx);
        g.used -= g.slots[idx].weight;
        g.free.push(idx);
        Some(g.slots[idx].value.clone())
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.slots.clear();
        g.free.clear();
        g.head = NIL;
        g.tail = NIL;
        g.used = 0;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current total weight of cached entries.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    /// Configured capacity in weight units.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses, g.evictions)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Inner<K, V> {
    fn alloc(&mut self, key: K, value: V, weight: usize) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = Slot { key, value, weight, prev: NIL, next: NIL };
            idx
        } else {
            self.slots.push(Slot { key, value, weight, prev: NIL, next: NIL });
            self.slots.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn evict_tail(&mut self) {
        let idx = self.tail;
        if idx == NIL {
            return;
        }
        self.unlink(idx);
        self.map.remove(&self.slots[idx].key);
        self.used -= self.slots[idx].weight;
        self.free.push(idx);
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_get_put() {
        let c = LruCache::new(100);
        assert!(c.get(&"a").is_none());
        c.put("a", 1, 10);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn eviction_is_lru_order() {
        let c = LruCache::new(30);
        c.put("a", 1, 10);
        c.put("b", 2, 10);
        c.put("c", 3, 10);
        // Touch "a" so "b" is now least recent.
        c.get(&"a");
        c.put("d", 4, 10);
        assert!(c.get(&"b").is_none(), "b should have been evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.get(&"d"), Some(4));
        let (_, _, evictions) = c.stats();
        assert_eq!(evictions, 1);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let c = LruCache::new(10);
        c.put("big", 1, 100);
        assert!(c.get(&"big").is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn replace_updates_weight() {
        let c = LruCache::new(100);
        c.put("a", 1, 40);
        c.put("a", 2, 10);
        assert_eq!(c.get(&"a"), Some(2));
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let c = LruCache::new(100);
        c.put("a", 1, 5);
        c.put("b", 2, 5);
        assert_eq!(c.remove(&"a"), Some(1));
        assert!(c.get(&"a").is_none());
        assert_eq!(c.used_bytes(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let c = LruCache::new(0);
        c.put("a", 1, 1);
        assert!(c.get(&"a").is_none());
    }

    #[test]
    fn with_metrics_reports_standard_counters() {
        let m = MetricsRegistry::new();
        let c = LruCache::with_metrics(100, &m, "decoded");
        c.put("a", 1, 10);
        c.get(&"a");
        c.get(&"b");
        assert_eq!(m.counter_value("cache.decoded.hit"), 1);
        assert_eq!(m.counter_value("cache.decoded.miss"), 1);
        // Internal stats stay in lockstep with the registry counters.
        let (hits, misses, _) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn heavy_churn_stays_within_capacity() {
        let c = LruCache::new(1000);
        for i in 0..10_000u32 {
            c.put(i, i, (i % 97) as usize + 1);
            assert!(c.used_bytes() <= 1000, "over capacity at {i}");
        }
        assert!(!c.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(LruCache::new(500));
        let mut handles = vec![];
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u32 {
                    let k = (t * 1000 + i % 100) as u32;
                    c.put(k, k, 7);
                    c.get(&k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.used_bytes() <= 500);
    }

    proptest! {
        #[test]
        fn prop_matches_reference_model(
            capacity in 1usize..200,
            ops in proptest::collection::vec((0u8..3, 0u32..20, 1usize..50), 0..200),
        ) {
            let cache = LruCache::new(capacity);
            // Reference: Vec of (key, weight) in MRU→LRU order.
            let mut model: Vec<(u32, usize)> = Vec::new();
            for (op, key, weight) in ops {
                match op {
                    0 => {
                        // put
                        model.retain(|&(k, _)| k != key);
                        if weight <= capacity {
                            model.insert(0, (key, weight));
                            while model.iter().map(|&(_, w)| w).sum::<usize>() > capacity {
                                model.pop();
                            }
                        }
                        cache.put(key, key, weight);
                    }
                    1 => {
                        // get
                        let got = cache.get(&key);
                        let pos = model.iter().position(|&(k, _)| k == key);
                        prop_assert_eq!(got.is_some(), pos.is_some());
                        if let Some(p) = pos {
                            let e = model.remove(p);
                            model.insert(0, e);
                        }
                    }
                    _ => {
                        // remove
                        let got = cache.remove(&key);
                        let pos = model.iter().position(|&(k, _)| k == key);
                        prop_assert_eq!(got.is_some(), pos.is_some());
                        if let Some(p) = pos {
                            model.remove(p);
                        }
                    }
                }
                prop_assert_eq!(
                    cache.used_bytes(),
                    model.iter().map(|&(_, w)| w).sum::<usize>()
                );
                prop_assert_eq!(cache.len(), model.len());
            }
        }
    }
}
