//! # bh-storage — the LSM columnar storage engine under BlendHouse
//!
//! A from-scratch substitute for ByteHouse's storage layer, providing every
//! property the paper's design depends on:
//!
//! * **Immutable sorted segments** ([`segment`]) holding column data plus a
//!   per-segment vector index built exactly once (§III-B).
//! * **Multi-version updates** via delete bitmaps ([`delete`], Fig. 6): an
//!   update writes a new segment and marks old rows deleted; queries filter
//!   through the bitmap; compaction garbage-collects.
//! * **Background compaction** ([`table`]) that merges small segments and
//!   rebuilds their vector index in the same task.
//! * **Scalar + semantic partitioning** ([`partition`]): `PARTITION BY`
//!   columns and `CLUSTER BY <vec> INTO n BUCKETS` k-means bucketing, both
//!   recorded in segment metadata for scheduler-side pruning (§IV-B).
//! * **Disaggregated persistence** ([`objectstore`]): all blobs live in a
//!   (simulated) remote shared store with injectable latency; compute stays
//!   stateless.
//! * **Hierarchical caches** ([`cache`], [`lru`]): in-memory LRU with
//!   separate metadata/data spaces, a local-disk tier, then remote (§II-D).
//! * **Selectivity statistics** ([`stats`]): per-column min/max and
//!   equi-width histograms feeding the cost-based optimizer's `s` estimate.

pub mod cache;
pub mod column;
pub mod delete;
pub mod lru;
pub mod objectstore;
pub mod partition;
pub mod predicate;
pub mod schema;
pub mod segment;
pub mod stats;
pub mod table;
pub mod value;

pub use cache::{BlockCache, IndexCache};
pub use delete::DeleteMap;
pub use objectstore::{
    DiskObjectStore, InMemoryObjectStore, ObjectStore, PendingGet, SharedObjectStore,
};
pub use predicate::Predicate;
pub use schema::{ColumnDef, TableSchema, VectorIndexDef};
pub use segment::{Segment, SegmentMeta};
pub use table::{IngestMode, TableStore, TableStoreConfig};
pub use value::{ColumnType, Value};
