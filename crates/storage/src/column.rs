//! Typed columnar storage for one segment column.
//!
//! Columns are stored type-specialized (no per-cell enum overhead) and are
//! serialized into **blocks** of `BLOCK_ROWS` rows. Block granularity is what
//! makes the paper's read-amplification optimization possible (§IV-C): after
//! a vector search, scalar lookups land on scattered row offsets, and reading
//! only the covering blocks instead of the whole column cuts remote I/O.

use crate::value::{ColumnType, Value};
use bh_common::{BhError, Result};
use bh_vector::codec::{Reader, Writer};
use bytes::Bytes;

/// Rows per serialized block. Kept small relative to segment sizes so the
/// fine-grained read path has real granularity to exploit.
pub const BLOCK_ROWS: usize = 1024;

/// In-memory column data.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants mirror ColumnType one-to-one
pub enum ColumnData {
    UInt64(Vec<u64>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Str(Vec<String>),
    DateTime(Vec<u64>),
    /// Row-major fixed-dim vectors.
    Vector { dim: usize, data: Vec<f32> },
}

impl ColumnData {
    /// An empty column of the given type (vector dim from schema/index).
    pub fn empty(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::UInt64 => ColumnData::UInt64(Vec::new()),
            ColumnType::Int64 => ColumnData::Int64(Vec::new()),
            ColumnType::Float64 => ColumnData::Float64(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
            ColumnType::DateTime => ColumnData::DateTime(Vec::new()),
            ColumnType::Vector(dim) => ColumnData::Vector { dim, data: Vec::new() },
        }
    }

    /// The column's type.
    pub fn ty(&self) -> ColumnType {
        match self {
            ColumnData::UInt64(_) => ColumnType::UInt64,
            ColumnData::Int64(_) => ColumnType::Int64,
            ColumnData::Float64(_) => ColumnType::Float64,
            ColumnData::Str(_) => ColumnType::Str,
            ColumnData::DateTime(_) => ColumnType::DateTime,
            ColumnData::Vector { dim, .. } => ColumnType::Vector(*dim),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::UInt64(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::DateTime(v) => v.len(),
            ColumnData::Vector { dim, data } => {
                if *dim == 0 {
                    0
                } else {
                    data.len() / dim
                }
            }
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value; the value must conform to the column type.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnData::UInt64(col), Value::UInt64(x)) => col.push(*x),
            (ColumnData::Int64(col), Value::Int64(x)) => col.push(*x),
            (ColumnData::Float64(col), Value::Float64(x)) => col.push(*x),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (ColumnData::DateTime(col), Value::DateTime(x)) => col.push(*x),
            (ColumnData::Vector { dim, data }, Value::Vector(x)) => {
                if *dim == 0 {
                    *dim = x.len();
                }
                if x.len() != *dim {
                    return Err(BhError::DimensionMismatch { expected: *dim, got: x.len() });
                }
                data.extend_from_slice(x);
            }
            (col, v) => {
                return Err(BhError::InvalidArgument(format!(
                    "cannot append {v} to {} column",
                    col.ty().name()
                )))
            }
        }
        Ok(())
    }

    /// Read one cell as a [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::UInt64(v) => Value::UInt64(v[row]),
            ColumnData::Int64(v) => Value::Int64(v[row]),
            ColumnData::Float64(v) => Value::Float64(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::DateTime(v) => Value::DateTime(v[row]),
            ColumnData::Vector { dim, data } => {
                Value::Vector(data[row * dim..(row + 1) * dim].to_vec())
            }
        }
    }

    /// Direct vector slice access (hot path for index builds and refine).
    pub fn vector_at(&self, row: usize) -> Option<&[f32]> {
        match self {
            ColumnData::Vector { dim, data } => Some(&data[row * dim..(row + 1) * dim]),
            _ => None,
        }
    }

    /// Raw f32 payload of a vector column.
    pub fn vector_data(&self) -> Option<(&[f32], usize)> {
        match self {
            ColumnData::Vector { dim, data } => Some((data, *dim)),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            ColumnData::UInt64(v) | ColumnData::DateTime(v) => v.len() * 8,
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
            ColumnData::Vector { data, .. } => data.len() * 4,
        }
    }

    /// Number of serialized blocks for this column.
    pub fn block_count(&self) -> usize {
        self.len().div_ceil(BLOCK_ROWS)
    }

    /// Which block a row offset falls into.
    pub fn block_of(row: usize) -> usize {
        row / BLOCK_ROWS
    }

    /// Serialize rows `[start, end)` (one block when aligned).
    fn encode_rows(&self, w: &mut Writer, start: usize, end: usize) {
        match self {
            ColumnData::UInt64(v) | ColumnData::DateTime(v) => w.put_u64_slice(&v[start..end]),
            ColumnData::Int64(v) => {
                w.put_u64(v[start..end].len() as u64);
                for &x in &v[start..end] {
                    w.put_u64(x as u64);
                }
            }
            ColumnData::Float64(v) => {
                w.put_u64(v[start..end].len() as u64);
                for &x in &v[start..end] {
                    w.put_f64(x);
                }
            }
            ColumnData::Str(v) => {
                w.put_u64(v[start..end].len() as u64);
                for s in &v[start..end] {
                    w.put_str(s);
                }
            }
            ColumnData::Vector { dim, data } => {
                w.put_f32_slice(&data[start * dim..end * dim]);
            }
        }
    }

    fn decode_rows(ty: ColumnType, r: &mut Reader<'_>) -> Result<ColumnData> {
        Ok(match ty {
            ColumnType::UInt64 => ColumnData::UInt64(r.get_u64_vec()?),
            ColumnType::DateTime => ColumnData::DateTime(r.get_u64_vec()?),
            ColumnType::Int64 => {
                let n = r.get_u64()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_u64()? as i64);
                }
                ColumnData::Int64(v)
            }
            ColumnType::Float64 => {
                let n = r.get_u64()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_f64()?);
                }
                ColumnData::Float64(v)
            }
            ColumnType::Str => {
                let n = r.get_u64()? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_str()?);
                }
                ColumnData::Str(v)
            }
            ColumnType::Vector(dim) => {
                let data = r.get_f32_vec()?;
                if dim != 0 && !data.is_empty() && data.len() % dim != 0 {
                    return Err(BhError::Serde("vector block not a multiple of dim".into()));
                }
                ColumnData::Vector { dim, data }
            }
        })
    }

    /// Serialize one block (`idx`-th group of `BLOCK_ROWS` rows).
    pub fn encode_block(&self, idx: usize) -> Bytes {
        let start = idx * BLOCK_ROWS;
        let end = ((idx + 1) * BLOCK_ROWS).min(self.len());
        let mut w = Writer::new();
        self.encode_rows(&mut w, start, end.max(start));
        w.finish()
    }

    /// Deserialize one block back into a (short) column.
    pub fn decode_block(ty: ColumnType, bytes: &[u8]) -> Result<ColumnData> {
        let mut r = Reader::new(bytes);
        Self::decode_rows(ty, &mut r)
    }

    /// Serialize the entire column as a sequence of blocks.
    pub fn encode_full(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u64(self.len() as u64);
        w.put_u64(self.block_count() as u64);
        for b in 0..self.block_count() {
            let start = b * BLOCK_ROWS;
            let end = ((b + 1) * BLOCK_ROWS).min(self.len());
            self.encode_rows(&mut w, start, end);
        }
        w.finish()
    }

    /// Deserialize a full column written by [`Self::encode_full`].
    pub fn decode_full(ty: ColumnType, bytes: &[u8]) -> Result<ColumnData> {
        let mut r = Reader::new(bytes);
        let total = r.get_u64()? as usize;
        let blocks = r.get_u64()? as usize;
        let mut out = ColumnData::empty(ty);
        for _ in 0..blocks {
            let part = Self::decode_rows(ty, &mut r)?;
            out.extend_from(&part)?;
        }
        if out.len() != total {
            return Err(BhError::Serde(format!(
                "column decoded {} rows, header said {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Append all rows of another same-typed column.
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::UInt64(a), ColumnData::UInt64(b)) => a.extend_from_slice(b),
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (ColumnData::DateTime(a), ColumnData::DateTime(b)) => a.extend_from_slice(b),
            (
                ColumnData::Vector { dim: da, data: a },
                ColumnData::Vector { dim: db, data: b },
            ) => {
                if *da == 0 {
                    *da = *db;
                }
                if !b.is_empty() && *da != *db {
                    return Err(BhError::DimensionMismatch { expected: *da, got: *db });
                }
                a.extend_from_slice(b);
            }
            (a, b) => {
                return Err(BhError::InvalidArgument(format!(
                    "cannot extend {} column with {}",
                    a.ty().name(),
                    b.ty().name()
                )))
            }
        }
        Ok(())
    }

    /// Keep only rows at the given sorted offsets (compaction path).
    pub fn take(&self, offsets: &[u32]) -> ColumnData {
        let mut out = ColumnData::empty(self.ty());
        for &o in offsets {
            // lint: allow(panic) - `self.get` yields values of this column's
            // own type, which an empty column of the same type always accepts
            out.push(&self.get(o as usize)).expect("same-typed take");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_col(n: usize) -> ColumnData {
        let mut c = ColumnData::empty(ColumnType::Str);
        for i in 0..n {
            c.push(&Value::Str(format!("row-{i}"))).unwrap();
        }
        c
    }

    #[test]
    fn push_and_get_all_types() {
        let mut u = ColumnData::empty(ColumnType::UInt64);
        u.push(&Value::UInt64(7)).unwrap();
        assert_eq!(u.get(0), Value::UInt64(7));

        let mut i = ColumnData::empty(ColumnType::Int64);
        i.push(&Value::Int64(-7)).unwrap();
        assert_eq!(i.get(0), Value::Int64(-7));

        let mut f = ColumnData::empty(ColumnType::Float64);
        f.push(&Value::Float64(0.5)).unwrap();
        assert_eq!(f.get(0), Value::Float64(0.5));

        let mut d = ColumnData::empty(ColumnType::DateTime);
        d.push(&Value::DateTime(99)).unwrap();
        assert_eq!(d.get(0), Value::DateTime(99));

        let mut v = ColumnData::empty(ColumnType::Vector(2));
        v.push(&Value::Vector(vec![1.0, 2.0])).unwrap();
        assert_eq!(v.get(0), Value::Vector(vec![1.0, 2.0]));
        assert_eq!(v.vector_at(0).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut u = ColumnData::empty(ColumnType::UInt64);
        assert!(u.push(&Value::Str("x".into())).is_err());
        let mut v = ColumnData::empty(ColumnType::Vector(2));
        assert!(v.push(&Value::Vector(vec![1.0])).is_err());
    }

    #[test]
    fn dimless_vector_column_locks_on_first_push() {
        let mut v = ColumnData::empty(ColumnType::Vector(0));
        v.push(&Value::Vector(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(v.ty(), ColumnType::Vector(3));
        assert!(v.push(&Value::Vector(vec![1.0])).is_err());
    }

    #[test]
    fn full_roundtrip_multi_block() {
        let n = BLOCK_ROWS * 2 + 17;
        let col = str_col(n);
        assert_eq!(col.block_count(), 3);
        let blob = col.encode_full();
        let back = ColumnData::decode_full(ColumnType::Str, &blob).unwrap();
        assert_eq!(back, col);
    }

    #[test]
    fn block_roundtrip() {
        let n = BLOCK_ROWS + 5;
        let mut col = ColumnData::empty(ColumnType::UInt64);
        for i in 0..n {
            col.push(&Value::UInt64(i as u64)).unwrap();
        }
        let b1 = col.encode_block(1);
        let part = ColumnData::decode_block(ColumnType::UInt64, &b1).unwrap();
        assert_eq!(part.len(), 5);
        assert_eq!(part.get(0), Value::UInt64(BLOCK_ROWS as u64));
        assert_eq!(ColumnData::block_of(BLOCK_ROWS), 1);
        assert_eq!(ColumnData::block_of(BLOCK_ROWS - 1), 0);
    }

    #[test]
    fn vector_column_roundtrip() {
        let mut col = ColumnData::empty(ColumnType::Vector(3));
        for i in 0..10 {
            col.push(&Value::Vector(vec![i as f32; 3])).unwrap();
        }
        let blob = col.encode_full();
        let back = ColumnData::decode_full(ColumnType::Vector(3), &blob).unwrap();
        assert_eq!(back, col);
        let (data, dim) = back.vector_data().unwrap();
        assert_eq!(dim, 3);
        assert_eq!(data.len(), 30);
    }

    #[test]
    fn corrupt_column_blob_rejected() {
        let col = str_col(10);
        let blob = col.encode_full();
        assert!(ColumnData::decode_full(ColumnType::Str, &blob[..blob.len() / 2]).is_err());
        // Wrong type decoding is rejected or yields mismatched row count.
        assert!(ColumnData::decode_full(ColumnType::Vector(7), &blob).is_err());
    }

    #[test]
    fn take_selects_offsets() {
        let col = str_col(20);
        let sub = col.take(&[0, 5, 19]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(1), Value::Str("row-5".into()));
    }

    #[test]
    fn extend_from_merges() {
        let mut a = str_col(3);
        let b = str_col(2);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 5);
        let mut v = ColumnData::empty(ColumnType::Vector(0));
        let w = {
            let mut w = ColumnData::empty(ColumnType::Vector(2));
            w.push(&Value::Vector(vec![1.0, 2.0])).unwrap();
            w
        };
        v.extend_from(&w).unwrap();
        assert_eq!(v.ty(), ColumnType::Vector(2));
        let bad = ColumnData::empty(ColumnType::UInt64);
        assert!(v.extend_from(&bad).is_err());
    }

    #[test]
    fn empty_column_encodes() {
        let col = ColumnData::empty(ColumnType::UInt64);
        let blob = col.encode_full();
        let back = ColumnData::decode_full(ColumnType::UInt64, &blob).unwrap();
        assert!(back.is_empty());
    }
}
