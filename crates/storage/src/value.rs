//! Cell values and column types.

use bh_common::{BhError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The data types BlendHouse tables support — the subset the paper's hybrid
/// queries exercise (Example 1 and the LAION workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Unsigned 64-bit integer.
    UInt64,
    /// Signed 64-bit integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// UTF-8 string.
    Str,
    /// Seconds since epoch, SQL-visible as `DateTime`.
    DateTime,
    /// Fixed-dimension `Array(Float32)` embedding column.
    Vector(usize),
}

impl ColumnType {
    /// Parse the SQL type name.
    pub fn parse(s: &str) -> Result<ColumnType> {
        let t = s.trim();
        let upper = t.to_ascii_uppercase();
        match upper.as_str() {
            "UINT64" => Ok(ColumnType::UInt64),
            "INT64" => Ok(ColumnType::Int64),
            "FLOAT64" | "DOUBLE" | "FLOAT" => Ok(ColumnType::Float64),
            "STRING" | "TEXT" => Ok(ColumnType::Str),
            "DATETIME" => Ok(ColumnType::DateTime),
            _ => {
                // ARRAY(FLOAT32) — dimension supplied by the index definition.
                if upper.replace(' ', "") == "ARRAY(FLOAT32)" {
                    Ok(ColumnType::Vector(0))
                } else {
                    Err(BhError::Parse(format!("unknown column type: {t}")))
                }
            }
        }
    }

    /// SQL-facing type name.
    pub fn name(&self) -> String {
        match self {
            ColumnType::UInt64 => "UInt64".into(),
            ColumnType::Int64 => "Int64".into(),
            ColumnType::Float64 => "Float64".into(),
            ColumnType::Str => "String".into(),
            ColumnType::DateTime => "DateTime".into(),
            ColumnType::Vector(d) => format!("Array(Float32) /* dim={d} */"),
        }
    }

    /// Is this an embedding column type?
    pub fn is_vector(&self) -> bool {
        matches!(self, ColumnType::Vector(_))
    }

    /// Whether values of this type order linearly (usable in range
    /// predicates, ORDER BY and min/max pruning).
    pub fn is_ordered_scalar(&self) -> bool {
        !self.is_vector()
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Unsigned integer cell.
    UInt64(u64),
    /// Signed integer cell.
    Int64(i64),
    /// Float cell.
    Float64(f64),
    /// String cell.
    Str(String),
    /// Seconds since epoch.
    DateTime(u64),
    /// Embedding cell.
    Vector(Vec<f32>),
    /// Absent value (results only; not storable).
    Null,
}

impl Value {
    /// Column type this value belongs to (`None` for `Null`).
    pub fn type_of(&self) -> Option<ColumnType> {
        match self {
            Value::UInt64(_) => Some(ColumnType::UInt64),
            Value::Int64(_) => Some(ColumnType::Int64),
            Value::Float64(_) => Some(ColumnType::Float64),
            Value::Str(_) => Some(ColumnType::Str),
            Value::DateTime(_) => Some(ColumnType::DateTime),
            Value::Vector(v) => Some(ColumnType::Vector(v.len())),
            Value::Null => None,
        }
    }

    /// Check the value can be stored in a column of `ty` (Null always can).
    pub fn conforms_to(&self, ty: ColumnType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Vector(v), ColumnType::Vector(d)) => d == 0 || v.len() == d,
            (v, t) => v.type_of() == Some(t),
        }
    }

    /// Total order over same-type scalar values; cross-type numeric values
    /// compare through f64. Vectors and Null are unordered (`None`).
    pub fn partial_cmp_scalar(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (UInt64(a), UInt64(b)) => Some(a.cmp(b)),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Float64(a), Float64(b)) => Some(a.total_cmp(b)),
            // Cross-numeric comparisons via f64.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt64(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            Value::DateTime(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Embedding view, if this is a vector.
    pub fn as_vector(&self) -> Option<&[f32]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::UInt64(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::DateTime(v) => write!(f, "dt({v})"),
            Value::Vector(v) => write!(f, "[{} floats]", v.len()),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse() {
        assert_eq!(ColumnType::parse("UInt64").unwrap(), ColumnType::UInt64);
        assert_eq!(ColumnType::parse("string").unwrap(), ColumnType::Str);
        assert_eq!(ColumnType::parse("Array(Float32)").unwrap(), ColumnType::Vector(0));
        assert_eq!(ColumnType::parse("ARRAY( FLOAT32 )").unwrap(), ColumnType::Vector(0));
        assert!(ColumnType::parse("Array(Int8)").is_err());
    }

    #[test]
    fn conformance() {
        assert!(Value::UInt64(1).conforms_to(ColumnType::UInt64));
        assert!(!Value::UInt64(1).conforms_to(ColumnType::Int64));
        assert!(Value::Null.conforms_to(ColumnType::Str));
        assert!(Value::Vector(vec![0.0; 4]).conforms_to(ColumnType::Vector(4)));
        assert!(!Value::Vector(vec![0.0; 3]).conforms_to(ColumnType::Vector(4)));
        assert!(Value::Vector(vec![0.0; 3]).conforms_to(ColumnType::Vector(0)));
    }

    #[test]
    fn ordering_same_type() {
        assert_eq!(
            Value::Str("a".into()).partial_cmp_scalar(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::UInt64(5).partial_cmp_scalar(&Value::UInt64(5)), Some(Ordering::Equal));
        assert_eq!(
            Value::DateTime(10).partial_cmp_scalar(&Value::DateTime(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn ordering_cross_numeric() {
        assert_eq!(
            Value::UInt64(3).partial_cmp_scalar(&Value::Float64(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int64(-1).partial_cmp_scalar(&Value::UInt64(0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn vectors_and_null_unordered() {
        assert_eq!(Value::Vector(vec![1.0]).partial_cmp_scalar(&Value::Vector(vec![1.0])), None);
        assert_eq!(Value::Null.partial_cmp_scalar(&Value::UInt64(1)), None);
        assert_eq!(Value::Str("x".into()).partial_cmp_scalar(&Value::UInt64(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Vector(vec![0.0; 3]).to_string(), "[3 floats]");
    }
}
