//! Delete bitmaps: the mutable half of the multi-version update design
//! (§III-B "Realtime update", Fig. 6).
//!
//! Segments are immutable; an UPDATE writes the new row versions into a fresh
//! segment and records the superseded offsets here. Queries intersect every
//! segment scan with the segment's *visibility* bitset (the complement of its
//! delete bitmap). Compaction materializes the surviving rows and clears the
//! bitmap.

use bh_common::{Bitset, SegmentId};
use bh_common::sync::{classes, RwLock};
use std::collections::HashMap;

/// Table-wide map from segment to its delete bitmap.
#[derive(Debug)]
pub struct DeleteMap {
    bitmaps: RwLock<HashMap<SegmentId, Bitset>>,
}

impl Default for DeleteMap {
    fn default() -> DeleteMap {
        DeleteMap { bitmaps: RwLock::new(&classes::DELETE_BITMAPS, HashMap::new()) }
    }
}

impl DeleteMap {
    /// An empty delete map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark row offsets of a segment as deleted.
    pub fn mark_deleted(&self, seg: SegmentId, rows: usize, offsets: impl IntoIterator<Item = u32>) {
        let mut g = self.bitmaps.write();
        let bm = g.entry(seg).or_insert_with(|| Bitset::new(rows));
        for o in offsets {
            bm.set(o as usize);
        }
    }

    /// Is a specific row deleted?
    pub fn is_deleted(&self, seg: SegmentId, offset: u32) -> bool {
        self.bitmaps.read().get(&seg).map(|b| b.contains(offset as usize)).unwrap_or(false)
    }

    /// Number of deleted rows in a segment.
    pub fn deleted_count(&self, seg: SegmentId) -> usize {
        self.bitmaps.read().get(&seg).map(|b| b.count()).unwrap_or(0)
    }

    /// Total deleted rows across all segments (compaction pressure signal).
    pub fn total_deleted(&self) -> usize {
        self.bitmaps.read().values().map(|b| b.count()).sum()
    }

    /// The visibility bitset of a segment: bit set ⇔ row is live.
    pub fn visibility(&self, seg: SegmentId, rows: usize) -> Bitset {
        match self.bitmaps.read().get(&seg) {
            Some(bm) => {
                let mut vis = bm.clone();
                vis.negate();
                vis
            }
            None => Bitset::full(rows),
        }
    }

    /// Raw delete bitmap, if any deletions were recorded.
    pub fn bitmap(&self, seg: SegmentId) -> Option<Bitset> {
        self.bitmaps.read().get(&seg).cloned()
    }

    /// Forget a segment's bitmap (after compaction removed the segment).
    pub fn clear(&self, seg: SegmentId) {
        self.bitmaps.write().remove(&seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let dm = DeleteMap::new();
        let seg = SegmentId(1);
        assert!(!dm.is_deleted(seg, 0));
        assert_eq!(dm.deleted_count(seg), 0);
        dm.mark_deleted(seg, 10, [2, 5]);
        assert!(dm.is_deleted(seg, 2));
        assert!(dm.is_deleted(seg, 5));
        assert!(!dm.is_deleted(seg, 3));
        assert_eq!(dm.deleted_count(seg), 2);
    }

    #[test]
    fn visibility_is_complement() {
        let dm = DeleteMap::new();
        let seg = SegmentId(2);
        dm.mark_deleted(seg, 6, [0, 3]);
        let vis = dm.visibility(seg, 6);
        assert_eq!(vis.iter().collect::<Vec<_>>(), vec![1, 2, 4, 5]);
        // Untouched segment: everything visible.
        let all = dm.visibility(SegmentId(99), 4);
        assert!(all.is_all_set());
    }

    #[test]
    fn incremental_marks_accumulate() {
        let dm = DeleteMap::new();
        let seg = SegmentId(3);
        dm.mark_deleted(seg, 8, [1]);
        dm.mark_deleted(seg, 8, [2, 1]);
        assert_eq!(dm.deleted_count(seg), 2);
        assert_eq!(dm.total_deleted(), 2);
    }

    #[test]
    fn clear_forgets() {
        let dm = DeleteMap::new();
        let seg = SegmentId(4);
        dm.mark_deleted(seg, 4, [0, 1, 2, 3]);
        assert_eq!(dm.deleted_count(seg), 4);
        dm.clear(seg);
        assert_eq!(dm.deleted_count(seg), 0);
        assert!(dm.bitmap(seg).is_none());
        assert!(dm.visibility(seg, 4).is_all_set());
    }

    #[test]
    fn concurrent_marking() {
        let dm = std::sync::Arc::new(DeleteMap::new());
        let seg = SegmentId(5);
        let mut handles = vec![];
        for t in 0..4u32 {
            let dm = dm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    dm.mark_deleted(seg, 1000, [t * 250 + i]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dm.deleted_count(seg), 1000);
    }
}
