//! The table store: LSM segment management, pipelined ingest, multi-version
//! updates, and compaction.
//!
//! This is the storage-side control plane of BlendHouse. Per table it tracks
//! the live segment set, delete bitmaps, the semantic clusterer and the
//! selectivity sketch; all data lives in the (simulated) remote object store,
//! keeping compute nodes stateless (§II-A).
//!
//! ## Ingest (§V-B1, Table IV)
//!
//! Rows are grouped by (scalar partition, semantic bucket), chunked into
//! segments, and persisted. Two modes exist to reproduce the paper's ingest
//! comparison:
//!
//! * [`IngestMode::Pipelined`] (BlendHouse): each segment's vector index is
//!   built **concurrently** with writing its column blocks.
//! * [`IngestMode::Staged`] (baseline behaviour): all column data is written
//!   first, then indexes are built sequentially.
//!
//! ## Updates (Fig. 6)
//!
//! `update` writes new row versions into fresh segments and marks the old
//! offsets in the delete bitmap — the index of an old segment is never
//! touched. `compact` merges small segments, drops dead rows, rebuilds the
//! vector index for the merged segment, and clears bitmaps.

use crate::delete::DeleteMap;
use crate::objectstore::SharedObjectStore;
use crate::partition::{group_rows, SemanticClusterer};
use crate::predicate::Predicate;
use crate::schema::TableSchema;
use crate::segment::{Row, Segment, SegmentMeta};
use crate::stats::{TableSketch, TableSketchBuilder};
use crate::value::Value;
use bh_common::ids::IdGenerator;
use bh_common::{BhError, Bitset, MetricsRegistry, Result, SegmentId, StealingCursor};
use bh_vector::autoindex::apply_auto_index;
use bh_vector::{IndexRegistry, VectorIndex};
use bytes::Bytes;
use bh_common::sync::{classes, Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How ingest overlaps segment writing with index building.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Build each segment's index concurrently with persisting its columns.
    Pipelined,
    /// Persist every segment first, then build all indexes sequentially.
    Staged,
}

/// Tunables for one table store.
#[derive(Debug, Clone)]
pub struct TableStoreConfig {
    /// Maximum rows per freshly ingested segment.
    pub segment_max_rows: usize,
    /// Overlap segment writes with index builds, or stage them.
    pub ingest_mode: IngestMode,
    /// Fill missing IVF `nlist` from segment size (§III-B auto index).
    pub auto_index: bool,
    /// Compaction merges a group only while the merged segment stays below
    /// this row count.
    pub compact_target_rows: usize,
    /// Seed for semantic clustering.
    pub semantic_seed: u64,
    /// Maximum threads rebuilding merged segments (row gather + index
    /// build) concurrently during [`TableStore::compact`]. `1` keeps the
    /// rebuild sequential; the default is the machine's parallelism.
    pub compact_parallelism: usize,
    /// Persist index blobs in the tiered v3 container (head + body) when the
    /// index kind supports it, enabling partial head-first loading on the
    /// cold path. Kinds without a tiered form fall back to whole v2 blobs.
    pub tiered_index: bool,
}

impl Default for TableStoreConfig {
    fn default() -> Self {
        Self {
            segment_max_rows: 2048,
            ingest_mode: IngestMode::Pipelined,
            auto_index: true,
            compact_target_rows: 64 * 1024,
            semantic_seed: 0,
            compact_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            tiered_index: true,
        }
    }
}

/// A failure caused by racing a concurrent compaction's garbage collection.
fn is_snapshot_race(e: &BhError) -> bool {
    match e {
        BhError::NotFound(msg) => msg.contains("segment"),
        BhError::Storage(msg) => msg.contains("blob not found"),
        _ => false,
    }
}

/// A built index blob ready to upload: framed bytes, kind, and the head
/// prefix length in bytes (`0` for untiered v2 blobs).
type IndexBlob = (Bytes, bh_vector::IndexKind, u64);

/// One compacted group staged by the parallel rebuild phase: rows dropped
/// plus the merged segment and its index blob, ready to commit (`None` when
/// every row of the group was deleted).
type RebuiltGroup = (usize, Option<(Segment, Option<IndexBlob>)>);

/// Outcome of one compaction run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments consumed by this pass.
    pub merged_segments: usize,
    /// Segments written by this pass.
    pub new_segments: usize,
    /// Dead (deleted/superseded) rows garbage-collected.
    pub rows_dropped: usize,
}

/// One table's storage state.
pub struct TableStore {
    schema: TableSchema,
    remote: SharedObjectStore,
    registry: Arc<IndexRegistry>,
    cfg: TableStoreConfig,
    segments: RwLock<BTreeMap<SegmentId, Arc<SegmentMeta>>>,
    deletes: DeleteMap,
    clusterer: RwLock<Option<Arc<SemanticClusterer>>>,
    sketch: Mutex<TableSketchBuilder>,
    /// Memoized sketch snapshot — rebuilding histograms per query would
    /// serialize the whole planner; invalidated on ingest.
    sketch_cache: RwLock<Option<Arc<TableSketch>>>,
    /// Serializes compaction runs: two concurrent passes over the same
    /// group would both materialize its rows and register duplicates.
    compaction_lock: Mutex<()>,
    ids: Arc<IdGenerator>,
    metrics: MetricsRegistry,
}

impl TableStore {
    /// An empty table persisting to `remote`.
    pub fn new(
        schema: TableSchema,
        remote: SharedObjectStore,
        registry: Arc<IndexRegistry>,
        cfg: TableStoreConfig,
        ids: Arc<IdGenerator>,
        metrics: MetricsRegistry,
    ) -> Result<TableStore> {
        schema.validate()?;
        Ok(TableStore {
            schema,
            remote,
            registry,
            cfg,
            segments: RwLock::new(&classes::TABLE_SEGMENTS, BTreeMap::new()),
            deletes: DeleteMap::new(),
            clusterer: RwLock::new(&classes::TABLE_CLUSTERER, None),
            sketch: Mutex::new(&classes::TABLE_SKETCH, TableSketchBuilder::default()),
            sketch_cache: RwLock::new(&classes::TABLE_SKETCH_CACHE, None),
            compaction_lock: Mutex::new(&classes::TABLE_COMPACTION, ()),
            ids,
            metrics,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The remote store this table persists to.
    pub fn remote_store(&self) -> &SharedObjectStore {
        &self.remote
    }

    /// The index-library registry used for builds and loads.
    pub fn registry(&self) -> &Arc<IndexRegistry> {
        &self.registry
    }

    /// Shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshot of live segment metadata.
    pub fn segments(&self) -> Vec<Arc<SegmentMeta>> {
        self.segments.read().values().cloned().collect()
    }

    /// Look up one live segment's metadata.
    pub fn segment(&self, id: SegmentId) -> Result<Arc<SegmentMeta>> {
        self.segments
            .read_checked()?
            .get(&id)
            .cloned()
            .ok_or_else(|| BhError::NotFound(format!("segment {id}")))
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.read().len()
    }

    /// Total live (visible) rows.
    pub fn visible_rows(&self) -> usize {
        self.segments
            .read()
            .values()
            .map(|m| m.row_count - self.deletes.deleted_count(m.id))
            .sum()
    }

    /// The table's delete bitmaps.
    pub fn delete_map(&self) -> &DeleteMap {
        &self.deletes
    }

    /// Visibility bitset of a segment (live rows set).
    pub fn visibility(&self, meta: &SegmentMeta) -> Bitset {
        self.deletes.visibility(meta.id, meta.row_count)
    }

    /// Current selectivity sketch (histograms) for the optimizer. Snapshots
    /// are memoized between ingests.
    pub fn sketch(&self) -> Arc<TableSketch> {
        if let Some(s) = self.sketch_cache.read().clone() {
            return s;
        }
        let built = Arc::new(self.sketch.lock().snapshot());
        *self.sketch_cache.write() = Some(built.clone());
        built
    }

    /// The semantic clusterer, once trained.
    pub fn clusterer(&self) -> Option<Arc<SemanticClusterer>> {
        self.clusterer.read().clone()
    }

    // ------------------------------------------------------------------ ingest

    /// Insert rows; returns the created segment ids.
    pub fn insert_rows(&self, rows: Vec<Row>) -> Result<Vec<SegmentId>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        for row in &rows {
            self.schema.validate_row(row)?;
        }
        self.observe_sketch(&rows);
        self.ensure_clusterer(&rows)?;
        let clusterer = self.clusterer();
        let groups = group_rows(&self.schema, clusterer.as_deref(), rows)?;

        // Materialize all segments (in memory) first.
        let mut pending: Vec<Segment> = Vec::new();
        for group in groups {
            let mut rows = group.rows;
            while !rows.is_empty() {
                let take = rows.len().min(self.cfg.segment_max_rows);
                let chunk: Vec<Row> = rows.drain(..take).collect();
                let seg = Segment::from_rows(
                    &self.schema,
                    self.ids.next_segment(),
                    chunk,
                    group.partition_key.clone(),
                    group.bucket,
                    0,
                )?;
                pending.push(seg);
            }
        }

        let created = match self.cfg.ingest_mode {
            IngestMode::Pipelined => self.ingest_pipelined(pending)?,
            IngestMode::Staged => self.ingest_staged(pending)?,
        };
        self.metrics.counter("table.segments_created").add(created.len() as u64);
        Ok(created)
    }

    /// Pipelined: per segment, column persistence and index build overlap.
    fn ingest_pipelined(&self, pending: Vec<Segment>) -> Result<Vec<SegmentId>> {
        let mut created = Vec::with_capacity(pending.len());
        for mut seg in pending {
            let index_blob: Option<IndexBlob> =
                std::thread::scope(|scope| -> Result<_> {
                    let build = scope.spawn(|| self.build_index_blob(&seg));
                    seg.persist(self.remote.as_ref())?;
                    build.join().map_err(|_| BhError::Internal("index build panicked".into()))?
                })?;
            self.finish_segment(&mut seg, index_blob)?;
            created.push(seg.meta.id);
        }
        Ok(created)
    }

    /// Staged: write all column data, then build indexes one by one.
    fn ingest_staged(&self, pending: Vec<Segment>) -> Result<Vec<SegmentId>> {
        for seg in &pending {
            seg.persist(self.remote.as_ref())?;
        }
        let mut created = Vec::with_capacity(pending.len());
        for mut seg in pending {
            let blob = self.build_index_blob(&seg)?;
            self.finish_segment(&mut seg, blob)?;
            created.push(seg.meta.id);
        }
        Ok(created)
    }

    /// Build the per-segment vector index blob, if the schema declares one.
    fn build_index_blob(&self, seg: &Segment) -> Result<Option<IndexBlob>> {
        let Some(idx_def) = self.schema.indexes.first() else { return Ok(None) };
        if seg.row_count() == 0 {
            return Ok(None);
        }
        let col = seg.column(&idx_def.column)?;
        let (data, dim) = col
            .vector_data()
            .ok_or_else(|| BhError::Internal("index column is not a vector".into()))?;
        if dim == 0 {
            return Ok(None);
        }
        let spec = if self.cfg.auto_index {
            apply_auto_index(&idx_def.spec, seg.row_count())
        } else {
            idx_def.spec.clone()
        };
        let mut builder = self.registry.create_builder(&spec)?;
        if builder.requires_training() {
            builder.train(data)?;
        }
        let ids: Vec<u64> = (0..seg.row_count() as u64).collect();
        builder.add_with_ids(data, &ids)?;
        let index = builder.finish()?;
        if self.cfg.tiered_index {
            if let Some((head, body)) = index.save_bytes_tiered()? {
                let head_bytes = bh_vector::tiered::head_prefix_len(head.len() as u64);
                return Ok(Some((bh_vector::tiered::frame(&head, &body), spec.kind, head_bytes)));
            }
        }
        Ok(Some((index.save_bytes()?, spec.kind, 0)))
    }

    /// Persist index + final metadata and register the segment.
    fn finish_segment(&self, seg: &mut Segment, index_blob: Option<IndexBlob>) -> Result<()> {
        if let Some((blob, kind, head_bytes)) = index_blob {
            seg.meta.index_kind = Some(kind);
            seg.meta.index_bytes = blob.len() as u64;
            seg.meta.index_head_bytes = head_bytes;
            self.remote.put(&seg.meta.index_key(), blob)?;
            // Re-persist meta with the index information included.
            let meta_json = serde_json::to_vec(&seg.meta)
                .map_err(|e| BhError::Serde(format!("segment meta encode: {e}")))?;
            self.remote.put(&seg.meta.meta_key(), meta_json.into())?;
        }
        self.metrics.counter("table.rows_ingested").add(seg.row_count() as u64);
        self.segments.write().insert(seg.meta.id, Arc::new(seg.meta.clone()));
        Ok(())
    }

    fn observe_sketch(&self, rows: &[Row]) {
        let mut sk = self.sketch.lock();
        for row in rows {
            for (cell, def) in row.iter().zip(&self.schema.columns) {
                sk.observe(&def.name, def.ty, cell);
            }
        }
        sk.observe_row_count(rows.len() as u64);
        drop(sk);
        *self.sketch_cache.write() = None;
    }

    /// Train the semantic clusterer lazily on the first ingest batch.
    fn ensure_clusterer(&self, rows: &[Row]) -> Result<()> {
        let Some(cb) = &self.schema.cluster_by else { return Ok(()) };
        if self.clusterer.read().is_some() {
            return Ok(());
        }
        let idx = self
            .schema
            .column_index(&cb.column)
            .ok_or_else(|| BhError::NotFound(format!("cluster column {}", cb.column)))?;
        let mut embs = Vec::new();
        let mut dim = 0;
        for row in rows {
            if let Some(v) = row[idx].as_vector() {
                dim = v.len();
                embs.extend_from_slice(v);
            }
        }
        if dim == 0 || embs.is_empty() {
            return Ok(());
        }
        let cl = SemanticClusterer::train(&embs, dim, cb.buckets, self.cfg.semantic_seed)?;
        *self.clusterer.write() = Some(Arc::new(cl));
        Ok(())
    }

    // ----------------------------------------------------------------- access

    /// Load a full segment from the remote store (workers layer their own
    /// caches on top; this is the uncached path).
    pub fn load_segment(&self, meta: &SegmentMeta) -> Result<Segment> {
        Segment::load(self.remote.as_ref(), &self.schema, meta)
    }

    /// Load one column of a segment from the remote store.
    pub fn load_column(&self, meta: &SegmentMeta, name: &str) -> Result<crate::column::ColumnData> {
        Segment::load_column(self.remote.as_ref(), &self.schema, meta, name)
    }

    /// Load and deserialize a segment's vector index (uncached).
    pub fn load_index(&self, meta: &SegmentMeta) -> Result<Option<Arc<dyn VectorIndex>>> {
        let Some(kind) = meta.index_kind else { return Ok(None) };
        let blob = self.remote.get(&meta.index_key())?;
        Ok(Some(self.registry.load(kind, &blob)?))
    }

    // ---------------------------------------------------------------- updates

    /// Delete all visible rows matching `predicate`; returns deleted count.
    /// Retries when the segment snapshot races a concurrent compaction.
    pub fn delete_where(&self, predicate: &Predicate) -> Result<usize> {
        for _attempt in 0..3 {
            match self.delete_where_once(predicate) {
                Err(e) if is_snapshot_race(&e) => continue,
                other => return other,
            }
        }
        self.delete_where_once(predicate)
    }

    fn delete_where_once(&self, predicate: &Predicate) -> Result<usize> {
        let mut total = 0;
        for meta in self.segments() {
            let offsets = self.matching_offsets(&meta, predicate)?;
            // The segment may have been compacted away while we scanned it;
            // marking deletes on a dropped segment would be lost. Re-check
            // membership under the current catalog before marking.
            if self.segments.read_checked()?.contains_key(&meta.id) {
                total += offsets.len();
                if !offsets.is_empty() {
                    self.deletes.mark_deleted(meta.id, meta.row_count, offsets);
                }
            } else if !offsets.is_empty() {
                return Err(BhError::NotFound(format!("segment {} compacted away", meta.id)));
            }
        }
        self.metrics.counter("table.rows_deleted").add(total as u64);
        Ok(total)
    }

    /// Update all visible rows matching `predicate` by applying column
    /// assignments; the new versions are re-inserted (Fig. 6). Returns the
    /// number of updated rows.
    pub fn update_where(
        &self,
        predicate: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize> {
        for _attempt in 0..3 {
            match self.update_where_once(predicate, assignments) {
                Err(e) if is_snapshot_race(&e) => continue,
                other => return other,
            }
        }
        self.update_where_once(predicate, assignments)
    }

    fn update_where_once(
        &self,
        predicate: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize> {
        for (col, v) in assignments {
            let def = self
                .schema
                .column(col)
                .ok_or_else(|| BhError::NotFound(format!("update column {col}")))?;
            if !v.conforms_to(def.ty) && !matches!(def.ty, crate::value::ColumnType::Vector(0)) {
                return Err(BhError::InvalidArgument(format!(
                    "update value {v} does not fit column {col}"
                )));
            }
        }
        let mut new_rows: Vec<Row> = Vec::new();
        let mut to_mark: Vec<(SegmentId, usize, Vec<u32>)> = Vec::new();
        for meta in self.segments() {
            let offsets = self.matching_offsets(&meta, predicate)?;
            if offsets.is_empty() {
                continue;
            }
            let seg = self.load_segment(&meta)?;
            for &o in &offsets {
                let mut row = seg.row(&self.schema, o as usize);
                for (col, v) in assignments {
                    let idx = self
                        .schema
                        .column_index(col)
                        .ok_or_else(|| BhError::NotFound(format!("update column {col}")))?;
                    row[idx] = v.clone();
                }
                new_rows.push(row);
            }
            to_mark.push((meta.id, meta.row_count, offsets));
        }
        let updated = new_rows.len();
        if updated == 0 {
            return Ok(0);
        }
        // Write the new versions first, then hide the old ones — a reader
        // may briefly see both versions but never neither (the paper's
        // multi-version semantics; exact snapshot isolation is out of scope).
        self.insert_rows(new_rows)?;
        for (seg, rows, offsets) in to_mark {
            self.deletes.mark_deleted(seg, rows, offsets);
        }
        self.metrics.counter("table.rows_updated").add(updated as u64);
        Ok(updated)
    }

    /// Row offsets of a segment that are visible and satisfy `predicate`.
    fn matching_offsets(&self, meta: &SegmentMeta, predicate: &Predicate) -> Result<Vec<u32>> {
        if !predicate.may_match_stats(&meta.column_stats) {
            return Ok(Vec::new());
        }
        let needed = predicate.referenced_columns();
        let mut columns: BTreeMap<String, crate::column::ColumnData> = BTreeMap::new();
        for c in &needed {
            columns.insert(c.clone(), self.load_column(meta, c)?);
        }
        let refs: BTreeMap<String, &crate::column::ColumnData> =
            columns.iter().map(|(k, v)| (k.clone(), v)).collect();
        let mut bits = predicate.eval_bitset(&refs, meta.row_count)?;
        bits.intersect_with(&self.visibility(meta));
        Ok(bits.iter().map(|o| o as u32).collect())
    }

    // ------------------------------------------------------------- compaction

    /// Merge small segments group-by-group, dropping dead rows and building a
    /// fresh vector index per merged segment.
    ///
    /// The per-group rebuild (row gather, merged-segment construction, index
    /// build, blob upload) is the expensive part and touches only that
    /// group's disjoint segment set, so it fans out across up to
    /// `compact_parallelism` scoped threads. Catalog mutations — registering
    /// the merged segment, dropping the old ones, garbage-collecting blobs —
    /// commit afterwards in group order, exactly as the sequential loop did.
    pub fn compact(&self) -> Result<CompactionReport> {
        let _guard = self.compaction_lock.lock();
        let mut compact_span = self.metrics.tracer().span("compact");
        let snapshot = self.segments();
        // Group by (partition key, bucket).
        let mut groups: BTreeMap<(String, Option<u32>), Vec<Arc<SegmentMeta>>> = BTreeMap::new();
        for meta in snapshot {
            let key = (
                serde_json::to_string(&meta.partition_key)
                    .map_err(|e| BhError::Serde(e.to_string()))?,
                meta.cluster_bucket,
            );
            groups.entry(key).or_default().push(meta);
        }

        // Phase 1: pick the eligible groups and pre-assign each merged
        // segment's id, so id allocation stays in deterministic group order
        // regardless of which rebuild finishes first.
        let mut jobs: Vec<(Vec<Arc<SegmentMeta>>, SegmentId)> = Vec::new();
        for (_, metas) in groups {
            let has_deletes = metas.iter().any(|m| self.deletes.deleted_count(m.id) > 0);
            if metas.len() < 2 && !has_deletes {
                continue;
            }
            let visible: usize =
                metas.iter().map(|m| m.row_count - self.deletes.deleted_count(m.id)).sum();
            if visible > self.cfg.compact_target_rows {
                continue;
            }
            jobs.push((metas, self.ids.next_segment()));
        }
        if jobs.is_empty() {
            self.metrics.counter("table.compactions").inc();
            return Ok(CompactionReport::default());
        }

        // Phase 2: rebuild groups concurrently (scoped fan-out, atomic
        // cursor). A worker that hits an error stops pulling jobs; peers
        // drain theirs and the first error in group order surfaces below.
        let par = self.cfg.compact_parallelism.max(1).min(jobs.len());
        let rebuilt: Vec<Option<Result<RebuiltGroup>>> = if par <= 1 {
            jobs.iter().map(|(metas, id)| Some(self.rebuild_group(metas, *id))).collect()
        } else {
            self.metrics.counter("table.parallel_compact_groups").add(jobs.len() as u64);
            let cursor = StealingCursor::new();
            std::thread::scope(|scope| {
                let cursor = &cursor;
                let jobs = &jobs;
                let handles: Vec<_> = (0..par)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            while let Some(i) = cursor.claim(jobs.len()) {
                                let (metas, id) = &jobs[i];
                                let r = self.rebuild_group(metas, *id);
                                let failed = r.is_err();
                                local.push((i, r));
                                if failed {
                                    break;
                                }
                            }
                            local
                        })
                    })
                    .collect();
                let mut merged: Vec<Option<Result<RebuiltGroup>>> =
                    (0..jobs.len()).map(|_| None).collect();
                let mut panicked = false;
                for h in handles {
                    match h.join() {
                        Ok(local) => {
                            for (i, r) in local {
                                merged[i] = Some(r);
                            }
                        }
                        Err(_) => panicked = true,
                    }
                }
                if panicked {
                    merged.clear();
                }
                merged
            })
        };
        if rebuilt.is_empty() {
            return Err(BhError::Internal("compaction worker panicked".into()));
        }

        // Phase 3: commit in group order.
        let mut report = CompactionReport::default();
        for ((metas, _), slot) in jobs.iter().zip(rebuilt) {
            let (dropped, built) = match slot {
                Some(Ok(r)) => r,
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(BhError::Internal(
                        "compaction aborted by peer failure".into(),
                    ))
                }
            };
            let new_segments = match built {
                Some((mut seg, blob)) => {
                    self.finish_segment(&mut seg, blob)?;
                    1
                }
                None => 0,
            };
            // Swap: register new (done above), drop old.
            {
                let mut g = self.segments.write_checked()?;
                for meta in metas {
                    g.remove(&meta.id);
                }
            }
            for meta in metas {
                self.deletes.clear(meta.id);
                Segment::delete_blobs(self.remote.as_ref(), meta)?;
            }
            report.merged_segments += metas.len();
            report.new_segments += new_segments;
            report.rows_dropped += dropped;
        }
        self.metrics.counter("table.compactions").inc();
        compact_span.attr("merged_segments", report.merged_segments);
        compact_span.attr("new_segments", report.new_segments);
        compact_span.attr("rows_dropped", report.rows_dropped);
        Ok(report)
    }

    /// The catalog-read-only part of compacting one group: gather visible
    /// rows, build the merged segment and its index, and upload the column
    /// blobs. Returns the dropped-row count plus the staged segment (`None`
    /// when the whole group is deleted).
    fn rebuild_group(
        &self,
        metas: &[Arc<SegmentMeta>],
        new_id: SegmentId,
    ) -> Result<RebuiltGroup> {
        let mut rows: Vec<Row> = Vec::new();
        let mut dropped = 0;
        for meta in metas {
            let seg = self.load_segment(meta)?;
            let vis = self.visibility(meta);
            dropped += meta.row_count - vis.count();
            for o in vis.iter() {
                rows.push(seg.row(&self.schema, o));
            }
        }
        if rows.is_empty() {
            return Ok((dropped, None));
        }
        let level = metas.iter().map(|m| m.level).max().unwrap_or(0).saturating_add(1);
        let partition_key = metas[0].partition_key.clone();
        let bucket = metas[0].cluster_bucket;
        let seg =
            Segment::from_rows(&self.schema, new_id, rows, partition_key, bucket, level)?;
        let blob = self.build_index_blob(&seg)?;
        seg.persist(self.remote.as_ref())?;
        Ok((dropped, Some((seg, blob))))
    }

    // -------------------------------------------------------------- reload

    /// Rebuild the segment catalog from the remote store (cold start). Delete
    /// bitmaps are not persisted in this reproduction — reload assumes
    /// compaction ran before shutdown (documented in DESIGN.md).
    pub fn reload_from_store(&self) -> Result<usize> {
        let prefix = format!("tables/{}/", self.schema.name);
        let mut found = 0;
        let mut g = self.segments.write_checked()?;
        g.clear();
        for key in self.remote.list(&prefix) {
            if !key.ends_with("/meta") {
                continue;
            }
            let blob = self.remote.get(&key)?;
            let meta: SegmentMeta = serde_json::from_slice(&blob)
                .map_err(|e| BhError::Serde(format!("segment meta: {e}")))?;
            g.insert(meta.id, Arc::new(meta));
            found += 1;
        }
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectstore::InMemoryObjectStore;
    use crate::value::ColumnType;
    use bh_common::rng::rng;
    use bh_vector::{IndexKind, Metric, SearchParams};
    use rand::Rng;

    fn schema(buckets: Option<usize>) -> TableSchema {
        let mut s = TableSchema::new("images")
            .with_column("id", ColumnType::UInt64)
            .with_column("label", ColumnType::Str)
            .with_column("score", ColumnType::Float64)
            .with_column("emb", ColumnType::Vector(8))
            .with_order_by(&["id"])
            .with_partition_by(&["label"])
            .with_vector_index("ann", "emb", IndexKind::Hnsw, 8, Metric::L2);
        if let Some(b) = buckets {
            s = s.with_cluster_by("emb", b);
        }
        s
    }

    fn store(schema: TableSchema, cfg: TableStoreConfig) -> TableStore {
        TableStore::new(
            schema,
            InMemoryObjectStore::for_tests(),
            Arc::new(IndexRegistry::with_builtins()),
            cfg,
            Arc::new(IdGenerator::new()),
            MetricsRegistry::new(),
        )
        .unwrap()
    }

    fn mk_rows(n: usize, seed: u64) -> Vec<Row> {
        let mut r = rng(seed);
        (0..n)
            .map(|i| {
                let cluster = (i % 4) as f32 * 8.0;
                vec![
                    Value::UInt64(i as u64),
                    Value::Str(format!("l{}", i % 2)),
                    Value::Float64(r.gen_range(0.0..1.0)),
                    Value::Vector((0..8).map(|_| cluster + r.gen_range(-0.5..0.5)).collect()),
                ]
            })
            .collect()
    }

    /// Satellite: poisoning the segment catalog fails the fallible lookup
    /// with `BhError::LockPoisoned` naming the class, while the infallible
    /// accessors recover (and heal), so the table keeps serving.
    #[test]
    fn poisoned_segment_catalog_is_reported_then_healed() {
        let ts = store(schema(None), TableStoreConfig::default());
        let ids = ts.insert_rows(mk_rows(20, 7)).unwrap();
        let seg = ids[0];

        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = ts.segments.write();
            panic!("die holding the segment catalog");
        }));
        assert!(died.is_err());

        match ts.segment(seg) {
            Err(BhError::LockPoisoned(class)) => assert_eq!(class, "TABLE_SEGMENTS"),
            other => panic!("expected LockPoisoned, got {other:?}"),
        }
        // The infallible read recovers, heals the lock, and still serves…
        assert!(!ts.segments().is_empty());
        // …after which the checked path works again.
        assert_eq!(ts.segment(seg).unwrap().id, seg);
    }

    #[test]
    fn ingest_creates_partitioned_indexed_segments() {
        let ts = store(schema(None), TableStoreConfig { segment_max_rows: 100, ..Default::default() });
        let ids = ts.insert_rows(mk_rows(350, 1)).unwrap();
        // 2 labels × ceil(175/100) segments each = 4.
        assert_eq!(ids.len(), 4);
        assert_eq!(ts.segment_count(), 4);
        assert_eq!(ts.visible_rows(), 350);
        for meta in ts.segments() {
            assert_eq!(meta.index_kind, Some(IndexKind::Hnsw));
            assert!(meta.index_bytes > 0);
            assert_eq!(meta.partition_key.len(), 1);
            assert!(meta.centroid.is_some());
            // Index loads and searches.
            let idx = ts.load_index(&meta).unwrap().unwrap();
            assert_eq!(idx.meta().len, meta.row_count);
            let q = meta.centroid.clone().unwrap();
            let got = idx.search_with_filter(&q, 3, &SearchParams::default(), None).unwrap();
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn staged_and_pipelined_produce_equivalent_state() {
        for mode in [IngestMode::Pipelined, IngestMode::Staged] {
            let ts = store(
                schema(None),
                TableStoreConfig { segment_max_rows: 64, ingest_mode: mode, ..Default::default() },
            );
            ts.insert_rows(mk_rows(200, 2)).unwrap();
            assert_eq!(ts.visible_rows(), 200, "{mode:?}");
            for meta in ts.segments() {
                assert!(meta.index_kind.is_some(), "{mode:?}");
                // Meta persisted in store matches catalog.
                let persisted =
                    Segment::load_meta(ts.remote_store().as_ref(), "images", meta.id).unwrap();
                assert_eq!(&persisted, meta.as_ref());
            }
        }
    }

    #[test]
    fn semantic_clustering_buckets_segments() {
        let ts = store(schema(Some(4)), TableStoreConfig::default());
        ts.insert_rows(mk_rows(400, 3)).unwrap();
        let cl = ts.clusterer().expect("trained on first batch");
        assert_eq!(cl.buckets(), 4);
        let metas = ts.segments();
        // Every segment has a bucket; rows inside agree with the clusterer.
        for meta in &metas {
            let b = meta.cluster_bucket.expect("bucketed");
            let seg = ts.load_segment(meta).unwrap();
            let (data, dim) = seg.columns["emb"].vector_data().unwrap();
            for i in 0..seg.row_count() {
                assert_eq!(cl.assign(&data[i * dim..(i + 1) * dim]), b);
            }
        }
        // Labels alternate with parity, clusters cycle mod 4, so each label
        // co-occurs with exactly 2 of the 4 buckets → 4 groups.
        assert_eq!(metas.len(), 4);
    }

    #[test]
    fn delete_where_hides_rows() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(100, 4)).unwrap();
        let n = ts
            .delete_where(&Predicate::range("id", None, Some(Value::UInt64(9))))
            .unwrap();
        assert_eq!(n, 10);
        assert_eq!(ts.visible_rows(), 90);
        // Deleting again is a no-op (already invisible).
        let again = ts
            .delete_where(&Predicate::range("id", None, Some(Value::UInt64(9))))
            .unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn update_where_creates_new_version_and_hides_old() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(50, 5)).unwrap();
        let before_segments = ts.segment_count();
        let n = ts
            .update_where(
                &Predicate::eq("id", Value::UInt64(7)),
                &[("score".into(), Value::Float64(9.5))],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(ts.visible_rows(), 50, "row count stable under update");
        assert!(ts.segment_count() > before_segments, "new version segment added");
        // The visible version of id=7 carries the new score.
        let mut seen = 0;
        for meta in ts.segments() {
            let seg = ts.load_segment(&meta).unwrap();
            let vis = ts.visibility(&meta);
            for o in vis.iter() {
                if seg.columns["id"].get(o) == Value::UInt64(7) {
                    assert_eq!(seg.columns["score"].get(o), Value::Float64(9.5));
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 1, "exactly one visible version");
    }

    #[test]
    fn update_rejects_bad_column_or_type() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(10, 6)).unwrap();
        assert!(ts
            .update_where(&Predicate::True, &[("nope".into(), Value::UInt64(1))])
            .is_err());
        assert!(ts
            .update_where(&Predicate::True, &[("score".into(), Value::Str("x".into()))])
            .is_err());
    }

    #[test]
    fn compaction_merges_and_drops_dead_rows() {
        let ts = store(
            schema(None),
            TableStoreConfig { segment_max_rows: 25, ..Default::default() },
        );
        // Several small ingests → many small segments.
        for batch in 0..4 {
            ts.insert_rows(mk_rows(50, 10 + batch)).unwrap();
        }
        let before = ts.segment_count();
        assert!(before >= 8);
        let visible_before = ts.visible_rows();
        ts.delete_where(&Predicate::range("id", None, Some(Value::UInt64(4)))).unwrap();
        let deleted = visible_before - ts.visible_rows();
        assert!(deleted > 0);

        let report = ts.compact().unwrap();
        assert!(report.merged_segments >= before - 2);
        assert_eq!(report.rows_dropped, deleted);
        assert!(ts.segment_count() < before);
        // Visibility preserved, bitmaps cleared, indexes rebuilt.
        assert_eq!(ts.visible_rows(), visible_before - deleted);
        assert_eq!(ts.delete_map().total_deleted(), 0);
        for meta in ts.segments() {
            assert!(meta.level >= 1);
            assert!(meta.index_kind.is_some());
            let idx = ts.load_index(&meta).unwrap().unwrap();
            assert_eq!(idx.meta().len, meta.row_count);
        }
    }

    #[test]
    fn parallel_compaction_matches_sequential() {
        // Two identical tables, one compacted sequentially and one with the
        // scoped fan-out: reports, visible rows, and per-segment contents
        // must agree.
        let build = |par: usize| {
            let ts = store(
                schema(Some(4)),
                TableStoreConfig {
                    segment_max_rows: 20,
                    compact_parallelism: par,
                    ..Default::default()
                },
            );
            for batch in 0..3 {
                ts.insert_rows(mk_rows(60, 40 + batch)).unwrap();
            }
            ts.delete_where(&Predicate::range("id", None, Some(Value::UInt64(7)))).unwrap();
            ts
        };
        let seq = build(1);
        let par = build(8);
        assert_eq!(seq.segment_count(), par.segment_count());
        let seq_report = seq.compact().unwrap();
        let par_report = par.compact().unwrap();
        assert_eq!(seq_report, par_report);
        assert_eq!(seq.visible_rows(), par.visible_rows());
        assert_eq!(seq.segment_count(), par.segment_count());
        // Same merged groups: (partition, bucket, rows) sets agree, and
        // every merged segment's index is loadable.
        let key = |ts: &TableStore| {
            let mut v: Vec<_> = ts
                .segments()
                .iter()
                .map(|m| {
                    (
                        serde_json::to_string(&m.partition_key).unwrap(),
                        m.cluster_bucket,
                        m.row_count,
                        m.level,
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&seq), key(&par));
        for meta in par.segments() {
            let idx = par.load_index(&meta).unwrap().unwrap();
            assert_eq!(idx.meta().len, meta.row_count);
        }
    }

    #[test]
    fn compaction_skips_oversized_groups() {
        let ts = store(
            schema(None),
            TableStoreConfig {
                segment_max_rows: 50,
                compact_target_rows: 60, // merged group would exceed this
                ..Default::default()
            },
        );
        ts.insert_rows(mk_rows(200, 20)).unwrap();
        let before = ts.segment_count();
        let report = ts.compact().unwrap();
        assert_eq!(report.merged_segments, 0);
        assert_eq!(ts.segment_count(), before);
    }

    #[test]
    fn compaction_can_drop_fully_deleted_group() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(40, 21)).unwrap();
        ts.delete_where(&Predicate::True).unwrap();
        assert_eq!(ts.visible_rows(), 0);
        let report = ts.compact().unwrap();
        assert_eq!(report.new_segments, 0);
        assert_eq!(ts.segment_count(), 0);
        // All blobs garbage-collected.
        assert!(ts.remote_store().list("tables/images/").is_empty());
    }

    #[test]
    fn sketch_reflects_ingested_data() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(500, 22)).unwrap();
        let sk = ts.sketch();
        assert_eq!(sk.rows, 500);
        let sel = Predicate::range("id", Some(Value::UInt64(0)), Some(Value::UInt64(49)))
            .estimate_selectivity(&sk);
        assert!((sel - 0.1).abs() < 0.05, "selectivity {sel}");
    }

    #[test]
    fn reload_from_store_recovers_catalog() {
        let remote = InMemoryObjectStore::for_tests();
        let registry = Arc::new(IndexRegistry::with_builtins());
        let ids = Arc::new(IdGenerator::new());
        let ts = TableStore::new(
            schema(None),
            remote.clone(),
            registry.clone(),
            TableStoreConfig::default(),
            ids.clone(),
            MetricsRegistry::new(),
        )
        .unwrap();
        ts.insert_rows(mk_rows(120, 23)).unwrap();
        let metas_before: Vec<_> = ts.segments().iter().map(|m| m.id).collect();

        // "Cold start": a new TableStore over the same remote store.
        let ts2 = TableStore::new(
            schema(None),
            remote,
            registry,
            TableStoreConfig::default(),
            Arc::new(IdGenerator::starting_at(1_000)),
            MetricsRegistry::new(),
        )
        .unwrap();
        let found = ts2.reload_from_store().unwrap();
        assert_eq!(found, metas_before.len());
        assert_eq!(ts2.visible_rows(), 120);
        for meta in ts2.segments() {
            assert!(ts2.load_index(&meta).unwrap().is_some());
        }
    }

    #[test]
    fn tiered_index_blobs_persist_and_load() {
        let ts = store(schema(None), TableStoreConfig::default());
        ts.insert_rows(mk_rows(300, 30)).unwrap();
        for meta in ts.segments() {
            assert!(meta.index_head_bytes > 0, "HNSW should persist tiered");
            assert!(meta.index_head_bytes < meta.index_bytes);
            // The stored blob is a v3 container whose prefix is the head.
            let blob = ts.remote_store().get(&meta.index_key()).unwrap();
            assert!(bh_vector::tiered::is_tiered(&blob));
            // Whole-blob load still round-trips through the registry sniff.
            let idx = ts.load_index(&meta).unwrap().unwrap();
            assert_eq!(idx.meta().len, meta.row_count);
            assert!(!idx.is_partial());
            // The head prefix alone yields a servable partial index.
            let prefix = blob.slice(0..meta.index_head_bytes as usize);
            let partial =
                ts.registry().load_head(meta.index_kind.unwrap(), &prefix).unwrap();
            assert!(partial.is_partial());
            assert_eq!(partial.meta().len, meta.row_count);
        }
    }

    #[test]
    fn untiered_config_writes_v2_blobs() {
        let ts = store(
            schema(None),
            TableStoreConfig { tiered_index: false, ..Default::default() },
        );
        ts.insert_rows(mk_rows(120, 31)).unwrap();
        for meta in ts.segments() {
            assert_eq!(meta.index_head_bytes, 0);
            let blob = ts.remote_store().get(&meta.index_key()).unwrap();
            assert!(!bh_vector::tiered::is_tiered(&blob));
            assert!(ts.load_index(&meta).unwrap().is_some());
        }
    }

    #[test]
    fn empty_insert_is_noop() {
        let ts = store(schema(None), TableStoreConfig::default());
        assert!(ts.insert_rows(vec![]).unwrap().is_empty());
        assert_eq!(ts.segment_count(), 0);
    }

    #[test]
    fn invalid_row_rejected_before_any_write() {
        let ts = store(schema(None), TableStoreConfig::default());
        let mut rows = mk_rows(5, 24);
        rows.push(vec![Value::UInt64(9)]); // wrong arity
        assert!(ts.insert_rows(rows).is_err());
        assert_eq!(ts.segment_count(), 0, "no partial ingest");
    }
}
