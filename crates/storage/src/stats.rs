//! Data statistics for pruning and selectivity estimation.
//!
//! Two granularities:
//!
//! * **Per-segment min/max** ([`ColumnStats`]) — drives segment pruning at
//!   scheduling time (§IV-B scalar partition pruning and zone-map style
//!   skipping).
//! * **Table-level sketches** ([`TableSketch`]) — equi-width histograms for
//!   numeric columns and a capped distinct-value counter for strings, giving
//!   the cost-based optimizer its `s` (predicate selectivity) estimate
//!   (Table II, Poosala-style histograms).

use crate::value::{ColumnType, Value};
use std::collections::BTreeMap;

/// Min/max of one column within one segment. Vector columns carry no stats.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Smallest observed value.
    pub min: Option<Value>,
    /// Largest observed value.
    pub max: Option<Value>,
    /// Observed (non-null, scalar) value count.
    pub rows: usize,
}

impl ColumnStats {
    /// Fold one value into the stats.
    pub fn observe(&mut self, v: &Value) {
        if v.is_null() || v.as_vector().is_some() {
            return;
        }
        self.rows += 1;
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) => {
                if v.partial_cmp_scalar(m) == Some(std::cmp::Ordering::Less) {
                    self.min = Some(v.clone());
                }
            }
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) => {
                if v.partial_cmp_scalar(m) == Some(std::cmp::Ordering::Greater) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Could any value in `[min, max]` fall inside `[lo, hi]`? `None` bounds
    /// are unbounded. Unknown stats conservatively answer `true`.
    pub fn range_may_overlap(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else { return true };
        if let Some(lo) = lo {
            if max.partial_cmp_scalar(lo) == Some(std::cmp::Ordering::Less) {
                return false;
            }
        }
        if let Some(hi) = hi {
            if min.partial_cmp_scalar(hi) == Some(std::cmp::Ordering::Greater) {
                return false;
            }
        }
        true
    }

    /// Could the segment contain `v` exactly?
    pub fn may_contain(&self, v: &Value) -> bool {
        self.range_may_overlap(Some(v), Some(v))
    }
}

/// Equi-width histogram over a numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericHistogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl NumericHistogram {
    /// Default bucket count used by the table sketch.
    pub const DEFAULT_BUCKETS: usize = 64;

    /// Build from raw values. Degenerate inputs (empty, constant) are
    /// handled with a single-bucket histogram.
    pub fn build(values: impl IntoIterator<Item = f64>, n_buckets: usize) -> NumericHistogram {
        let vals: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if vals.is_empty() {
            return NumericHistogram { lo: 0.0, hi: 0.0, buckets: vec![0], total: 0 };
        }
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            return NumericHistogram {
                lo,
                hi,
                buckets: vec![vals.len() as u64],
                total: vals.len() as u64,
            };
        }
        let nb = n_buckets.max(1);
        let mut buckets = vec![0u64; nb];
        let width = (hi - lo) / nb as f64;
        for v in &vals {
            let idx = (((v - lo) / width) as usize).min(nb - 1);
            buckets[idx] += 1;
        }
        NumericHistogram { lo, hi, buckets, total: vals.len() as u64 }
    }

    /// Number of values the histogram was built over.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated fraction of rows with value in `[lo, hi]` (unbounded sides
    /// as `None`), with linear interpolation inside partially covered
    /// buckets.
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q_lo = lo.unwrap_or(f64::NEG_INFINITY);
        let q_hi = hi.unwrap_or(f64::INFINITY);
        if q_lo > q_hi {
            return 0.0;
        }
        if self.lo == self.hi {
            return if q_lo <= self.lo && self.lo <= q_hi { 1.0 } else { 0.0 };
        }
        let nb = self.buckets.len();
        let width = (self.hi - self.lo) / nb as f64;
        let mut count = 0.0;
        for (i, &b) in self.buckets.iter().enumerate() {
            let b_lo = self.lo + i as f64 * width;
            let b_hi = b_lo + width;
            let o_lo = q_lo.max(b_lo);
            let o_hi = q_hi.min(b_hi);
            if o_hi > o_lo {
                count += b as f64 * ((o_hi - o_lo) / width).min(1.0);
            }
        }
        (count / self.total as f64).clamp(0.0, 1.0)
    }

    /// Point-equality selectivity: the covering bucket spread over its width.
    pub fn selectivity_eq(&self, v: f64) -> f64 {
        if self.total == 0 || v < self.lo || v > self.hi {
            return 0.0;
        }
        if self.lo == self.hi {
            return if v == self.lo { 1.0 } else { 0.0 };
        }
        let nb = self.buckets.len();
        let width = (self.hi - self.lo) / nb as f64;
        let idx = (((v - self.lo) / width) as usize).min(nb - 1);
        // Assume ~width distinct values per bucket.
        (self.buckets[idx] as f64 / self.total as f64 / width.max(1.0)).clamp(0.0, 1.0)
    }
}

/// Capped distinct-value counter for string columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StringSketch {
    counts: BTreeMap<String, u64>,
    overflow: u64,
    total: u64,
}

impl StringSketch {
    /// Distinct values tracked exactly before overflow spreading begins.
    pub const MAX_DISTINCT: usize = 1024;

    /// Fold one string occurrence into the sketch.
    pub fn observe(&mut self, s: &str) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(s) {
            *c += 1;
        } else if self.counts.len() < Self::MAX_DISTINCT {
            self.counts.insert(s.to_string(), 1);
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observed strings.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Equality selectivity: exact when tracked, otherwise spread the
    /// overflow mass over an assumed long tail.
    pub fn selectivity_eq(&self, s: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        match self.counts.get(s) {
            Some(&c) => c as f64 / self.total as f64,
            None => {
                if self.overflow == 0 {
                    0.0
                } else {
                    (self.overflow as f64 / Self::MAX_DISTINCT as f64 / self.total as f64)
                        .clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Distinct values currently tracked exactly.
    pub fn distinct_tracked(&self) -> usize {
        self.counts.len()
    }
}

/// Per-column sketch for selectivity estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSketch {
    /// Equi-width histogram over a numeric column.
    Numeric(NumericHistogram),
    /// Capped distinct counter over a string column.
    Strings(StringSketch),
}

/// Table-level statistics: one sketch per scalar column.
#[derive(Debug, Clone, Default)]
pub struct TableSketch {
    /// Per-column sketches (vector columns excluded).
    pub columns: BTreeMap<String, ColumnSketch>,
    /// Total ingested rows.
    pub rows: u64,
}

impl TableSketch {
    /// Build from column iterators. Vector columns are skipped.
    pub fn builder() -> TableSketchBuilder {
        TableSketchBuilder::default()
    }
}

/// Incremental builder used during segment writes.
#[derive(Debug, Default)]
pub struct TableSketchBuilder {
    numeric: BTreeMap<String, Vec<f64>>,
    strings: BTreeMap<String, StringSketch>,
    rows: u64,
}

impl TableSketchBuilder {
    /// Fold one cell into the per-column accumulators.
    pub fn observe(&mut self, column: &str, ty: ColumnType, v: &Value) {
        match ty {
            ColumnType::Str => {
                if let Some(s) = v.as_str() {
                    self.strings.entry(column.to_string()).or_default().observe(s);
                }
            }
            ColumnType::Vector(_) => {}
            _ => {
                if let Some(f) = v.as_f64() {
                    self.numeric.entry(column.to_string()).or_default().push(f);
                }
            }
        }
    }

    /// Record ingested rows (once per batch).
    pub fn observe_row_count(&mut self, n: u64) {
        self.rows += n;
    }

    /// Build a sketch from the current state without consuming the builder
    /// (used by the table store, which keeps accumulating across ingests).
    pub fn snapshot(&self) -> TableSketch {
        let mut columns = BTreeMap::new();
        for (name, vals) in &self.numeric {
            columns.insert(
                name.clone(),
                ColumnSketch::Numeric(NumericHistogram::build(
                    vals.iter().copied(),
                    NumericHistogram::DEFAULT_BUCKETS,
                )),
            );
        }
        for (name, sk) in &self.strings {
            columns.insert(name.clone(), ColumnSketch::Strings(sk.clone()));
        }
        TableSketch { columns, rows: self.rows }
    }

    /// Consume the builder into a sketch.
    pub fn finish(self) -> TableSketch {
        let mut columns = BTreeMap::new();
        for (name, vals) in self.numeric {
            columns.insert(
                name,
                ColumnSketch::Numeric(NumericHistogram::build(
                    vals,
                    NumericHistogram::DEFAULT_BUCKETS,
                )),
            );
        }
        for (name, sk) in self.strings {
            columns.insert(name, ColumnSketch::Strings(sk));
        }
        TableSketch { columns, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn column_stats_minmax_and_pruning() {
        let mut s = ColumnStats::default();
        for v in [5u64, 1, 9, 3] {
            s.observe(&Value::UInt64(v));
        }
        assert_eq!(s.min, Some(Value::UInt64(1)));
        assert_eq!(s.max, Some(Value::UInt64(9)));
        assert!(s.may_contain(&Value::UInt64(5)));
        assert!(s.range_may_overlap(Some(&Value::UInt64(9)), None));
        assert!(!s.range_may_overlap(Some(&Value::UInt64(10)), None));
        assert!(!s.range_may_overlap(None, Some(&Value::UInt64(0))));
        assert!(s.range_may_overlap(Some(&Value::UInt64(0)), Some(&Value::UInt64(100))));
    }

    #[test]
    fn unknown_stats_never_prune() {
        let s = ColumnStats::default();
        assert!(s.may_contain(&Value::UInt64(42)));
    }

    #[test]
    fn vector_values_ignored() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Vector(vec![1.0]));
        assert_eq!(s.rows, 0);
        assert!(s.min.is_none());
    }

    #[test]
    fn histogram_uniform_range_estimates() {
        let h = NumericHistogram::build((0..1000).map(|i| i as f64), 50);
        let s = h.selectivity_range(Some(0.0), Some(99.0));
        assert!((s - 0.1).abs() < 0.02, "expected ~0.1, got {s}");
        let s_all = h.selectivity_range(None, None);
        assert!((s_all - 1.0).abs() < 1e-9);
        assert_eq!(h.selectivity_range(Some(5000.0), Some(6000.0)), 0.0);
        assert_eq!(h.selectivity_range(Some(10.0), Some(5.0)), 0.0);
    }

    #[test]
    fn histogram_degenerate_inputs() {
        let empty = NumericHistogram::build(std::iter::empty(), 8);
        assert_eq!(empty.selectivity_range(None, None), 0.0);
        let constant = NumericHistogram::build([7.0, 7.0, 7.0], 8);
        assert_eq!(constant.selectivity_range(Some(7.0), Some(7.0)), 1.0);
        assert_eq!(constant.selectivity_range(Some(8.0), Some(9.0)), 0.0);
        assert_eq!(constant.selectivity_eq(7.0), 1.0);
    }

    #[test]
    fn string_sketch_exact_until_cap() {
        let mut sk = StringSketch::default();
        for _ in 0..90 {
            sk.observe("animal");
        }
        for _ in 0..10 {
            sk.observe("plant");
        }
        assert_eq!(sk.selectivity_eq("animal"), 0.9);
        assert_eq!(sk.selectivity_eq("plant"), 0.1);
        assert_eq!(sk.selectivity_eq("mineral"), 0.0);
    }

    #[test]
    fn string_sketch_overflow_spreads_mass() {
        let mut sk = StringSketch::default();
        for i in 0..(StringSketch::MAX_DISTINCT + 100) {
            sk.observe(&format!("s{i}"));
        }
        assert_eq!(sk.distinct_tracked(), StringSketch::MAX_DISTINCT);
        let unseen = sk.selectivity_eq("definitely-not-seen");
        assert!(unseen > 0.0 && unseen < 0.01);
    }

    #[test]
    fn sketch_builder_routes_types() {
        let mut b = TableSketch::builder();
        for i in 0..100 {
            b.observe("x", ColumnType::UInt64, &Value::UInt64(i));
            b.observe("label", ColumnType::Str, &Value::Str(format!("l{}", i % 4)));
            b.observe("v", ColumnType::Vector(2), &Value::Vector(vec![0.0, 1.0]));
        }
        b.observe_row_count(100);
        let sk = b.finish();
        assert_eq!(sk.rows, 100);
        assert!(matches!(sk.columns.get("x"), Some(ColumnSketch::Numeric(_))));
        assert!(matches!(sk.columns.get("label"), Some(ColumnSketch::Strings(_))));
        assert!(!sk.columns.contains_key("v"));
    }

    proptest! {
        #[test]
        fn prop_histogram_range_close_to_truth(
            vals in proptest::collection::vec(0.0f64..100.0, 50..300),
            lo in 0.0f64..100.0,
            span in 0.0f64..100.0,
        ) {
            let hi = lo + span;
            let h = NumericHistogram::build(vals.iter().copied(), 32);
            let truth = vals.iter().filter(|&&v| v >= lo && v <= hi).count() as f64
                / vals.len() as f64;
            let est = h.selectivity_range(Some(lo), Some(hi));
            // Equi-width histograms are coarse; assert bounded absolute error.
            prop_assert!((est - truth).abs() <= 0.15, "est {est} vs truth {truth}");
        }

        #[test]
        fn prop_selectivity_monotone_in_range(
            vals in proptest::collection::vec(-50.0f64..50.0, 20..200),
            a in -50.0f64..50.0,
            b in 0.0f64..20.0,
            c in 0.0f64..20.0,
        ) {
            let h = NumericHistogram::build(vals.iter().copied(), 16);
            let narrow = h.selectivity_range(Some(a), Some(a + b));
            let wide = h.selectivity_range(Some(a), Some(a + b + c));
            prop_assert!(wide >= narrow - 1e-9);
        }
    }
}
