//! Scalar predicates: evaluation, vectorized bitset evaluation, min/max
//! pruning, and histogram-based selectivity estimation.
//!
//! Predicates are the structured half of every hybrid query. They are used
//! in four distinct ways, all implemented here:
//!
//! 1. **Row evaluation** — post-filter execution tests individual rows.
//! 2. **Bitset evaluation** — pre-filter execution materializes a qualifying
//!    bitset over a whole segment (the input to the ANN bitmap scan).
//! 3. **Segment pruning** — `may_match_stats` answers "could any row of a
//!    segment with these min/max stats qualify?" for scheduler-side pruning.
//! 4. **Selectivity estimation** — `estimate_selectivity` produces the `s`
//!    term of the paper's cost model from table sketches.

use crate::column::ColumnData;
use crate::stats::{ColumnSketch, ColumnStats, TableSketch};
use crate::value::Value;
use bh_common::regex_lite::Regex;
use bh_common::{BhError, Bitset, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A boolean predicate over scalar columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// `col = value`
    Eq(String, Value),
    /// `col` in a range with optional unbounded sides. `lo_open`/`hi_open`
    /// make the corresponding bound exclusive (`<` / `>` comparisons).
    Range {
        /// Filtered column.
        column: String,
        /// Lower bound (`None` = unbounded).
        lo: Option<Value>,
        /// Upper bound (`None` = unbounded).
        hi: Option<Value>,
        /// Exclude the lower bound itself (`>`).
        lo_open: bool,
        /// Exclude the upper bound itself (`<`).
        hi_open: bool,
    },
    /// `col REGEXP 'pattern'` (LAION-style caption matching).
    RegexMatch(String, Regex),
    /// `col IN (v1, v2, …)`
    In(String, Vec<Value>),
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = v`.
    pub fn eq(column: &str, v: Value) -> Predicate {
        Predicate::Eq(column.into(), v)
    }

    /// Inclusive range (`BETWEEN`-style bounds).
    pub fn range(column: &str, lo: Option<Value>, hi: Option<Value>) -> Predicate {
        Predicate::Range { column: column.into(), lo, hi, lo_open: false, hi_open: false }
    }

    /// Range with explicit bound openness (`<` / `>` comparisons).
    pub fn range_open(
        column: &str,
        lo: Option<Value>,
        hi: Option<Value>,
        lo_open: bool,
        hi_open: bool,
    ) -> Predicate {
        Predicate::Range { column: column.into(), lo, hi, lo_open, hi_open }
    }

    /// `column REGEXP pattern` (compiles the pattern).
    pub fn regex(column: &str, pattern: &str) -> Result<Predicate> {
        Ok(Predicate::RegexMatch(column.into(), Regex::new(pattern)?))
    }

    /// Conjunction, flattening the 0- and 1-element cases.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        match preds.len() {
            0 | 1 => preds.into_iter().next().unwrap_or(Predicate::True),
            _ => Predicate::And(preds),
        }
    }

    /// Column names this predicate references, deduplicated.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::True => {}
            Predicate::Eq(c, _) | Predicate::RegexMatch(c, _) | Predicate::In(c, _) => {
                out.push(c.clone())
            }
            Predicate::Range { column, .. } => out.push(column.clone()),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Evaluate against one row given a column→value mapping.
    pub fn eval(&self, row: &BTreeMap<String, Value>) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => {
                let cell = lookup(row, c)?;
                cell.partial_cmp_scalar(v) == Some(std::cmp::Ordering::Equal)
            }
            Predicate::Range { column, lo, hi, lo_open, hi_open } => {
                let cell = lookup(row, column)?;
                in_range(cell, lo.as_ref(), hi.as_ref(), *lo_open, *hi_open)
            }
            Predicate::RegexMatch(c, re) => {
                let cell = lookup(row, c)?;
                cell.as_str().map(|s| re.is_match(s)).unwrap_or(false)
            }
            Predicate::In(c, vals) => {
                let cell = lookup(row, c)?;
                vals.iter()
                    .any(|v| cell.partial_cmp_scalar(v) == Some(std::cmp::Ordering::Equal))
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(row)?,
        })
    }

    /// Vectorized evaluation over segment columns: bit set ⇔ row qualifies.
    /// `columns` must contain every referenced column, each with `rows` rows.
    pub fn eval_bitset(
        &self,
        columns: &BTreeMap<String, &ColumnData>,
        rows: usize,
    ) -> Result<Bitset> {
        Ok(match self {
            Predicate::True => Bitset::full(rows),
            Predicate::Eq(c, v) => {
                let col = col_lookup(columns, c, rows)?;
                if let Some(fast) = eq_fast(col, v, rows) {
                    fast
                } else {
                    let mut b = Bitset::new(rows);
                    for i in 0..rows {
                        if col.get(i).partial_cmp_scalar(v) == Some(std::cmp::Ordering::Equal) {
                            b.set(i);
                        }
                    }
                    b
                }
            }
            Predicate::Range { column, lo, hi, lo_open, hi_open } => {
                let col = col_lookup(columns, column, rows)?;
                if let Some(fast) =
                    range_fast(col, lo.as_ref(), hi.as_ref(), *lo_open, *hi_open, rows)
                {
                    fast
                } else {
                    let mut b = Bitset::new(rows);
                    for i in 0..rows {
                        if in_range(&col.get(i), lo.as_ref(), hi.as_ref(), *lo_open, *hi_open) {
                            b.set(i);
                        }
                    }
                    b
                }
            }
            Predicate::RegexMatch(c, re) => {
                let col = col_lookup(columns, c, rows)?;
                let mut b = Bitset::new(rows);
                match col {
                    ColumnData::Str(v) => {
                        for (i, s) in v.iter().enumerate() {
                            if re.is_match(s) {
                                b.set(i);
                            }
                        }
                    }
                    _ => {
                        return Err(BhError::Plan(format!(
                            "regex predicate on non-string column {c}"
                        )))
                    }
                }
                b
            }
            Predicate::In(c, vals) => {
                let col = col_lookup(columns, c, rows)?;
                let mut b = Bitset::new(rows);
                for i in 0..rows {
                    let cell = col.get(i);
                    if vals
                        .iter()
                        .any(|v| cell.partial_cmp_scalar(v) == Some(std::cmp::Ordering::Equal))
                    {
                        b.set(i);
                    }
                }
                b
            }
            Predicate::And(ps) => {
                let mut acc = Bitset::full(rows);
                for p in ps {
                    acc.intersect_with(&p.eval_bitset(columns, rows)?);
                    if acc.is_all_clear() {
                        break;
                    }
                }
                acc
            }
            Predicate::Or(ps) => {
                let mut acc = Bitset::new(rows);
                for p in ps {
                    acc.union_with(&p.eval_bitset(columns, rows)?);
                }
                acc
            }
            Predicate::Not(p) => {
                let mut b = p.eval_bitset(columns, rows)?;
                b.negate();
                b
            }
        })
    }

    /// Segment pruning: could any row of a segment with these per-column
    /// min/max stats satisfy the predicate? Conservative (never prunes
    /// wrongly); regex and NOT answer `true`.
    pub fn may_match_stats(&self, stats: &BTreeMap<String, ColumnStats>) -> bool {
        match self {
            Predicate::True | Predicate::RegexMatch(..) | Predicate::Not(_) => true,
            Predicate::Eq(c, v) => stats.get(c).map(|s| s.may_contain(v)).unwrap_or(true),
            // Openness is ignored for pruning — strictly conservative.
            Predicate::Range { column, lo, hi, .. } => stats
                .get(column)
                .map(|s| s.range_may_overlap(lo.as_ref(), hi.as_ref()))
                .unwrap_or(true),
            Predicate::In(c, vals) => stats
                .get(c)
                .map(|s| vals.iter().any(|v| s.may_contain(v)))
                .unwrap_or(true),
            Predicate::And(ps) => ps.iter().all(|p| p.may_match_stats(stats)),
            Predicate::Or(ps) => ps.is_empty() || ps.iter().any(|p| p.may_match_stats(stats)),
        }
    }

    /// Histogram-based selectivity estimate (the cost model's `s`).
    /// Independence is assumed across AND/OR branches; unknown shapes fall
    /// back to conservative constants (regex 0.1, unknown column 0.3).
    pub fn estimate_selectivity(&self, sketch: &TableSketch) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Eq(c, v) => match (sketch.columns.get(c), v) {
                (Some(ColumnSketch::Numeric(h)), v) => {
                    v.as_f64().map(|f| h.selectivity_eq(f)).unwrap_or(0.0)
                }
                (Some(ColumnSketch::Strings(sk)), Value::Str(s)) => sk.selectivity_eq(s),
                _ => 0.3,
            },
            Predicate::Range { column, lo, hi, .. } => match sketch.columns.get(column) {
                Some(ColumnSketch::Numeric(h)) => h.selectivity_range(
                    lo.as_ref().and_then(|v| v.as_f64()),
                    hi.as_ref().and_then(|v| v.as_f64()),
                ),
                _ => 0.3,
            },
            Predicate::RegexMatch(..) => 0.1,
            Predicate::In(c, vals) => {
                vals.iter()
                    .map(|v| Predicate::Eq(c.clone(), v.clone()).estimate_selectivity(sketch))
                    .sum::<f64>()
                    .clamp(0.0, 1.0)
            }
            Predicate::And(ps) => ps.iter().map(|p| p.estimate_selectivity(sketch)).product(),
            Predicate::Or(ps) => {
                let none: f64 =
                    ps.iter().map(|p| 1.0 - p.estimate_selectivity(sketch)).product();
                1.0 - none
            }
            Predicate::Not(p) => 1.0 - p.estimate_selectivity(sketch),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Eq(c, v) => write!(f, "{c} = {v}"),
            Predicate::Range { column, lo, hi, lo_open, hi_open } => match (lo, hi) {
                (Some(l), Some(h)) => write!(f, "{column} BETWEEN {l} AND {h}"),
                (Some(l), None) => {
                    write!(f, "{column} {} {l}", if *lo_open { ">" } else { ">=" })
                }
                (None, Some(h)) => {
                    write!(f, "{column} {} {h}", if *hi_open { "<" } else { "<=" })
                }
                (None, None) => write!(f, "{column} IS ANY"),
            },
            Predicate::RegexMatch(c, re) => write!(f, "{c} REGEXP '{}'", re.as_str()),
            Predicate::In(c, vs) => {
                write!(f, "{c} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

/// Vectorized equality over typed columns — avoids per-cell [`Value`]
/// boxing on the hot pre-filter path (the engine-level optimization the
/// paper attributes to vectorized execution). Returns `None` for shapes the
/// fast path does not cover; callers fall back to the generic loop.
fn eq_fast(col: &ColumnData, v: &Value, rows: usize) -> Option<Bitset> {
    let mut b = Bitset::new(rows);
    match (col, v) {
        (ColumnData::Str(data), Value::Str(want)) => {
            for (i, s) in data.iter().enumerate() {
                if s == want {
                    b.set(i);
                }
            }
        }
        (ColumnData::UInt64(data), _) | (ColumnData::DateTime(data), _) => {
            let want = v.as_f64()?;
            for (i, &x) in data.iter().enumerate() {
                if x as f64 == want {
                    b.set(i);
                }
            }
        }
        (ColumnData::Int64(data), _) => {
            let want = v.as_f64()?;
            for (i, &x) in data.iter().enumerate() {
                if x as f64 == want {
                    b.set(i);
                }
            }
        }
        (ColumnData::Float64(data), _) => {
            let want = v.as_f64()?;
            for (i, &x) in data.iter().enumerate() {
                if x == want {
                    b.set(i);
                }
            }
        }
        _ => return None,
    }
    Some(b)
}

/// Vectorized numeric range test (see [`eq_fast`]). Bound comparisons go
/// through `f64`, matching `Value::partial_cmp_scalar`'s cross-type rule.
fn range_fast(
    col: &ColumnData,
    lo: Option<&Value>,
    hi: Option<&Value>,
    lo_open: bool,
    hi_open: bool,
    rows: usize,
) -> Option<Bitset> {
    // Extract f64 bounds; a non-numeric bound (e.g. a string) disqualifies.
    let lo_f = match lo {
        Some(v) => Some(v.as_f64()?),
        None => None,
    };
    let hi_f = match hi {
        Some(v) => Some(v.as_f64()?),
        None => None,
    };
    let test = |x: f64| {
        if let Some(l) = lo_f {
            if x < l || (lo_open && x == l) {
                return false;
            }
        }
        if let Some(h) = hi_f {
            if x > h || (hi_open && x == h) {
                return false;
            }
        }
        true
    };
    let mut b = Bitset::new(rows);
    match col {
        ColumnData::UInt64(data) | ColumnData::DateTime(data) => {
            for (i, &x) in data.iter().enumerate() {
                if test(x as f64) {
                    b.set(i);
                }
            }
        }
        ColumnData::Int64(data) => {
            for (i, &x) in data.iter().enumerate() {
                if test(x as f64) {
                    b.set(i);
                }
            }
        }
        ColumnData::Float64(data) => {
            for (i, &x) in data.iter().enumerate() {
                if test(x) {
                    b.set(i);
                }
            }
        }
        _ => return None,
    }
    Some(b)
}

fn lookup<'a>(row: &'a BTreeMap<String, Value>, col: &str) -> Result<&'a Value> {
    row.get(col).ok_or_else(|| BhError::Plan(format!("predicate column {col} missing from row")))
}

fn col_lookup<'a>(
    columns: &BTreeMap<String, &'a ColumnData>,
    col: &str,
    rows: usize,
) -> Result<&'a ColumnData> {
    let c = columns
        .get(col)
        .ok_or_else(|| BhError::Plan(format!("predicate column {col} not provided")))?;
    if c.len() != rows {
        return Err(BhError::Internal(format!(
            "column {col} has {} rows, segment claims {rows}",
            c.len()
        )));
    }
    Ok(c)
}

fn in_range(v: &Value, lo: Option<&Value>, hi: Option<&Value>, lo_open: bool, hi_open: bool) -> bool {
    if let Some(lo) = lo {
        match v.partial_cmp_scalar(lo) {
            Some(std::cmp::Ordering::Less) | None => return false,
            Some(std::cmp::Ordering::Equal) if lo_open => return false,
            _ => {}
        }
    }
    if let Some(hi) = hi {
        match v.partial_cmp_scalar(hi) {
            Some(std::cmp::Ordering::Greater) | None => return false,
            Some(std::cmp::Ordering::Equal) if hi_open => return false,
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;
    use proptest::prelude::*;

    fn row(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    fn segment_columns(n: usize) -> (ColumnData, ColumnData, ColumnData) {
        let mut ints = ColumnData::empty(ColumnType::UInt64);
        let mut labels = ColumnData::empty(ColumnType::Str);
        let mut sims = ColumnData::empty(ColumnType::Float64);
        for i in 0..n {
            ints.push(&Value::UInt64(i as u64)).unwrap();
            labels
                .push(&Value::Str(if i % 2 == 0 { "animal".into() } else { "plant".into() }))
                .unwrap();
            sims.push(&Value::Float64(i as f64 / n as f64)).unwrap();
        }
        (ints, labels, sims)
    }

    #[test]
    fn row_eval_basics() {
        let r = row(&[("x", Value::UInt64(5)), ("s", Value::Str("animal".into()))]);
        assert!(Predicate::eq("x", Value::UInt64(5)).eval(&r).unwrap());
        assert!(!Predicate::eq("x", Value::UInt64(6)).eval(&r).unwrap());
        assert!(Predicate::range("x", Some(Value::UInt64(5)), Some(Value::UInt64(9)))
            .eval(&r)
            .unwrap());
        assert!(!Predicate::range("x", Some(Value::UInt64(6)), None).eval(&r).unwrap());
        assert!(Predicate::regex("s", "^ani").unwrap().eval(&r).unwrap());
        assert!(Predicate::In("x".into(), vec![Value::UInt64(1), Value::UInt64(5)])
            .eval(&r)
            .unwrap());
        assert!(Predicate::eq("missing", Value::UInt64(1)).eval(&r).is_err());
    }

    #[test]
    fn compound_eval() {
        let r = row(&[("a", Value::UInt64(1)), ("b", Value::UInt64(2))]);
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::UInt64(1)),
            Predicate::eq("b", Value::UInt64(2)),
        ]);
        assert!(p.eval(&r).unwrap());
        let q = Predicate::Or(vec![
            Predicate::eq("a", Value::UInt64(9)),
            Predicate::eq("b", Value::UInt64(2)),
        ]);
        assert!(q.eval(&r).unwrap());
        assert!(!Predicate::Not(Box::new(q)).eval(&r).unwrap());
    }

    #[test]
    fn bitset_matches_row_eval() {
        let n = 100;
        let (ints, labels, sims) = segment_columns(n);
        let columns: BTreeMap<String, &ColumnData> = [
            ("x".to_string(), &ints),
            ("label".to_string(), &labels),
            ("sim".to_string(), &sims),
        ]
        .into_iter()
        .collect();

        let p = Predicate::And(vec![
            Predicate::eq("label", Value::Str("animal".into())),
            Predicate::range("sim", Some(Value::Float64(0.5)), None),
            Predicate::range("x", None, Some(Value::UInt64(90))),
        ]);
        let bits = p.eval_bitset(&columns, n).unwrap();
        for i in 0..n {
            let r = row(&[
                ("x", ints.get(i)),
                ("label", labels.get(i)),
                ("sim", sims.get(i)),
            ]);
            assert_eq!(bits.contains(i), p.eval(&r).unwrap(), "row {i}");
        }
    }

    #[test]
    fn regex_bitset_and_type_error() {
        let n = 10;
        let (ints, labels, _) = segment_columns(n);
        let columns: BTreeMap<String, &ColumnData> =
            [("label".to_string(), &labels), ("x".to_string(), &ints)].into_iter().collect();
        let p = Predicate::regex("label", "^pla").unwrap();
        let bits = p.eval_bitset(&columns, n).unwrap();
        assert_eq!(bits.count(), 5);
        let bad = Predicate::regex("x", "^1").unwrap();
        assert!(bad.eval_bitset(&columns, n).is_err());
    }

    #[test]
    fn true_predicate_selects_everything() {
        let columns = BTreeMap::new();
        let bits = Predicate::True.eval_bitset(&columns, 7).unwrap();
        assert!(bits.is_all_set());
    }

    #[test]
    fn stats_pruning() {
        let mut st = ColumnStats::default();
        for v in 10..20u64 {
            st.observe(&Value::UInt64(v));
        }
        let stats: BTreeMap<String, ColumnStats> = [("x".to_string(), st)].into_iter().collect();
        assert!(Predicate::eq("x", Value::UInt64(15)).may_match_stats(&stats));
        assert!(!Predicate::eq("x", Value::UInt64(50)).may_match_stats(&stats));
        assert!(!Predicate::range("x", Some(Value::UInt64(30)), None).may_match_stats(&stats));
        assert!(Predicate::range("x", Some(Value::UInt64(19)), None).may_match_stats(&stats));
        // AND prunes if any branch prunes; OR only if all prune.
        let and = Predicate::And(vec![
            Predicate::eq("x", Value::UInt64(15)),
            Predicate::eq("x", Value::UInt64(50)),
        ]);
        assert!(!and.may_match_stats(&stats));
        let or = Predicate::Or(vec![
            Predicate::eq("x", Value::UInt64(15)),
            Predicate::eq("x", Value::UInt64(50)),
        ]);
        assert!(or.may_match_stats(&stats));
        // Unknown column never prunes.
        assert!(Predicate::eq("y", Value::UInt64(0)).may_match_stats(&stats));
    }

    #[test]
    fn selectivity_estimates() {
        let mut b = crate::stats::TableSketch::builder();
        for i in 0..1000u64 {
            b.observe("x", ColumnType::UInt64, &Value::UInt64(i));
            b.observe(
                "label",
                ColumnType::Str,
                &Value::Str(if i % 10 == 0 { "rare".into() } else { "common".into() }),
            );
        }
        b.observe_row_count(1000);
        let sk = b.finish();
        let s = Predicate::range("x", Some(Value::UInt64(0)), Some(Value::UInt64(99)))
            .estimate_selectivity(&sk);
        assert!((s - 0.1).abs() < 0.05, "range selectivity {s}");
        let eq = Predicate::eq("label", Value::Str("rare".into())).estimate_selectivity(&sk);
        assert!((eq - 0.1).abs() < 0.02, "string eq selectivity {eq}");
        let and = Predicate::And(vec![
            Predicate::range("x", Some(Value::UInt64(0)), Some(Value::UInt64(499))),
            Predicate::eq("label", Value::Str("common".into())),
        ])
        .estimate_selectivity(&sk);
        assert!((and - 0.45).abs() < 0.1, "AND selectivity {and}");
    }

    #[test]
    fn referenced_columns_dedup() {
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::UInt64(1)),
            Predicate::Or(vec![
                Predicate::eq("b", Value::UInt64(2)),
                Predicate::eq("a", Value::UInt64(3)),
            ]),
        ]);
        assert_eq!(p.referenced_columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::And(vec![
            Predicate::eq("label", Value::Str("animal".into())),
            Predicate::range("t", Some(Value::DateTime(5)), None),
        ]);
        assert_eq!(p.to_string(), "(label = 'animal' AND t >= dt(5))");
    }

    proptest! {
        #[test]
        fn prop_bitset_count_matches_row_count(
            n in 1usize..200,
            threshold in 0u64..200,
        ) {
            let mut ints = ColumnData::empty(ColumnType::UInt64);
            for i in 0..n {
                ints.push(&Value::UInt64(i as u64)).unwrap();
            }
            let columns: BTreeMap<String, &ColumnData> =
                [("x".to_string(), &ints)].into_iter().collect();
            let p = Predicate::range("x", None, Some(Value::UInt64(threshold)));
            let bits = p.eval_bitset(&columns, n).unwrap();
            let expect = (0..n).filter(|&i| i as u64 <= threshold).count();
            prop_assert_eq!(bits.count(), expect);
        }

        #[test]
        fn prop_not_is_complement(
            n in 1usize..100,
            m in 1u64..50,
        ) {
            let mut ints = ColumnData::empty(ColumnType::UInt64);
            for i in 0..n {
                ints.push(&Value::UInt64(i as u64 % m)).unwrap();
            }
            let columns: BTreeMap<String, &ColumnData> =
                [("x".to_string(), &ints)].into_iter().collect();
            let p = Predicate::eq("x", Value::UInt64(0));
            let pos = p.eval_bitset(&columns, n).unwrap();
            let neg = Predicate::Not(Box::new(p)).eval_bitset(&columns, n).unwrap();
            prop_assert_eq!(pos.count() + neg.count(), n);
        }
    }
}
