//! Simulated disaggregated storage.
//!
//! All segment column blobs, index blobs and metadata live in an
//! [`ObjectStore`]. Two implementations:
//!
//! * [`InMemoryObjectStore`] — a latency-charging in-memory blob map. With a
//!   remote-profile [`LatencyModel`] it *is* the paper's "remote distributed
//!   storage system"; with the zero model it doubles as a fast test store.
//! * [`DiskObjectStore`] — real files under a root directory, used as the
//!   local-disk cache tier and for persistence tests.
//!
//! Every get/put charges `model.cost(blob_len)` against the store's clock and
//! bumps metrics counters, so experiments can observe both simulated time and
//! I/O counts.

use bh_common::{BhError, LatencyModel, MetricsRegistry, Result, SharedClock};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Blob store interface (S3-alike: whole-object put/get).
pub trait ObjectStore: Send + Sync {
    /// Store a blob under `key`, replacing any previous value.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;
    /// Fetch the blob at `key`.
    fn get(&self, key: &str) -> Result<Bytes>;
    /// Remove the blob at `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;
    /// Does a blob exist at `key`? (No latency charge.)
    fn exists(&self, key: &str) -> bool;
    /// Keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Sum of stored blob sizes.
    fn total_bytes(&self) -> u64;
}

/// Shared handle.
pub type SharedObjectStore = Arc<dyn ObjectStore>;

/// In-memory blob map with injected latency.
pub struct InMemoryObjectStore {
    blobs: RwLock<BTreeMap<String, Bytes>>,
    clock: SharedClock,
    model: LatencyModel,
    metrics: MetricsRegistry,
    /// Metric name prefix, e.g. `"remote"` → counters `remote.get`, …
    label: String,
}

impl InMemoryObjectStore {
    /// A store charging `model` against `clock` per operation.
    pub fn new(clock: SharedClock, model: LatencyModel, metrics: MetricsRegistry, label: &str) -> Self {
        Self { blobs: RwLock::new(BTreeMap::new()), clock, model, metrics, label: label.into() }
    }

    /// A zero-latency store for tests.
    pub fn for_tests() -> Arc<Self> {
        Arc::new(Self::new(
            bh_common::VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "test-store",
        ))
    }

    fn charge(&self, op: &str, bytes: usize) {
        let mut span = self.metrics.tracer().span(store_span_name(op));
        span.attr("store", self.label.as_str());
        span.attr("bytes", bytes);
        span.attr("sim_nanos", self.model.cost(bytes).as_nanos() as u64);
        self.model.charge(self.clock.as_ref(), bytes);
        self.metrics.counter(&format!("{}.{op}", self.label)).inc();
        self.metrics.counter(&format!("{}.{op}.bytes", self.label)).add(bytes as u64);
    }
}

/// Span names need `&'static str`; map the operation verb once here so both
/// store implementations report the same taxonomy.
fn store_span_name(op: &str) -> &'static str {
    match op {
        "get" => "store.get",
        "put" => "store.put",
        _ => "store.delete",
    }
}

impl ObjectStore for InMemoryObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.charge("put", data.len());
        self.blobs.write().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let blob = self
            .blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| BhError::Storage(format!("blob not found: {key}")))?;
        self.charge("get", blob.len());
        Ok(blob)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.charge("delete", 0);
        self.blobs.write().remove(key);
        Ok(())
    }

    fn exists(&self, key: &str) -> bool {
        self.blobs.read().contains_key(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.blobs.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }

    fn total_bytes(&self) -> u64 {
        self.blobs.read().values().map(|b| b.len() as u64).sum()
    }
}

/// File-backed store (local disk tier). Keys map to files under `root`;
/// `/` in keys becomes a subdirectory.
pub struct DiskObjectStore {
    root: PathBuf,
    clock: SharedClock,
    model: LatencyModel,
    metrics: MetricsRegistry,
    label: String,
}

impl DiskObjectStore {
    /// A file-backed store rooted at `root`.
    pub fn new(
        root: impl Into<PathBuf>,
        clock: SharedClock,
        model: LatencyModel,
        metrics: MetricsRegistry,
        label: &str,
    ) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root, clock, model, metrics, label: label.into() })
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        if key.contains("..") || key.starts_with('/') {
            return Err(BhError::InvalidArgument(format!("unsafe blob key: {key}")));
        }
        Ok(self.root.join(key))
    }

    fn charge(&self, op: &str, bytes: usize) {
        let mut span = self.metrics.tracer().span(store_span_name(op));
        span.attr("store", self.label.as_str());
        span.attr("bytes", bytes);
        span.attr("sim_nanos", self.model.cost(bytes).as_nanos() as u64);
        self.model.charge(self.clock.as_ref(), bytes);
        self.metrics.counter(&format!("{}.{op}", self.label)).inc();
        self.metrics.counter(&format!("{}.{op}.bytes", self.label)).add(bytes as u64);
    }
}

impl ObjectStore for DiskObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        self.charge("put", data.len());
        // Write-then-rename for atomicity.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_of(key)?;
        let data = std::fs::read(&path)
            .map_err(|e| BhError::Storage(format!("blob not found: {key} ({e})")))?;
        self.charge("get", data.len());
        Ok(Bytes::from(data))
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        self.charge("delete", 0);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> bool {
        self.path_of(key).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        fn walk(dir: &std::path::Path, root: &std::path::Path, out: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if p.extension().map(|x| x != "tmp").unwrap_or(true) {
                    if let Ok(rel) = p.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.retain(|k| k.starts_with(prefix));
        out.sort();
        out
    }

    fn total_bytes(&self) -> u64 {
        self.list("")
            .iter()
            .filter_map(|k| self.path_of(k).ok())
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::VirtualClock;
    use std::time::Duration;

    #[test]
    fn memory_store_roundtrip() {
        let s = InMemoryObjectStore::for_tests();
        assert!(!s.exists("a"));
        s.put("a", Bytes::from_static(b"hello")).unwrap();
        assert!(s.exists("a"));
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.total_bytes(), 5);
        s.delete("a").unwrap();
        assert!(s.get("a").is_err());
    }

    #[test]
    fn memory_store_list_by_prefix() {
        let s = InMemoryObjectStore::for_tests();
        s.put("seg-1/col-a", Bytes::new()).unwrap();
        s.put("seg-1/col-b", Bytes::new()).unwrap();
        s.put("seg-2/col-a", Bytes::new()).unwrap();
        assert_eq!(s.list("seg-1/").len(), 2);
        assert_eq!(s.list("seg-").len(), 3);
        assert!(s.list("zzz").is_empty());
    }

    #[test]
    fn latency_is_charged_per_byte() {
        let clock = VirtualClock::shared();
        let model = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(10));
        let m = MetricsRegistry::new();
        let s = InMemoryObjectStore::new(clock.clone(), model, m.clone(), "remote");
        s.put("k", Bytes::from(vec![0u8; 1000])).unwrap();
        // 100µs base + 10ns * 1000 = 110µs
        assert_eq!(clock.now_nanos(), 110_000);
        s.get("k").unwrap();
        assert_eq!(clock.now_nanos(), 220_000);
        assert_eq!(m.counter_value("remote.get"), 1);
        assert_eq!(m.counter_value("remote.put.bytes"), 1000);
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        s.put("seg-1/index", Bytes::from_static(b"blob")).unwrap();
        assert!(s.exists("seg-1/index"));
        assert_eq!(s.get("seg-1/index").unwrap(), Bytes::from_static(b"blob"));
        assert_eq!(s.list("seg-1/"), vec!["seg-1/index".to_string()]);
        assert_eq!(s.total_bytes(), 4);
        s.delete("seg-1/index").unwrap();
        assert!(!s.exists("seg-1/index"));
        // Deleting a missing key is fine.
        s.delete("seg-1/index").unwrap();
    }

    #[test]
    fn disk_store_rejects_traversal() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        assert!(s.put("../evil", Bytes::new()).is_err());
        assert!(s.get("/abs").is_err());
    }

    #[test]
    fn disk_store_overwrite() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        s.put("k", Bytes::from_static(b"one")).unwrap();
        s.put("k", Bytes::from_static(b"two")).unwrap();
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"two"));
    }
}
