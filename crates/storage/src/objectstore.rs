//! Simulated disaggregated storage.
//!
//! All segment column blobs, index blobs and metadata live in an
//! [`ObjectStore`]. Two implementations:
//!
//! * [`InMemoryObjectStore`] — a latency-charging in-memory blob map. With a
//!   remote-profile [`LatencyModel`] it *is* the paper's "remote distributed
//!   storage system"; with the zero model it doubles as a fast test store.
//! * [`DiskObjectStore`] — real files under a root directory, used as the
//!   local-disk cache tier and for persistence tests.
//!
//! Every get/put charges `model.cost(blob_len)` against the store's clock and
//! bumps metrics counters, so experiments can observe both simulated time and
//! I/O counts.

use bh_common::{BhError, LatencyModel, MetricsRegistry, Reactor, Result, SharedClock, Ticket};
use bytes::Bytes;
use bh_common::sync::{classes, RwLock};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// An in-flight `get`: the bytes are already in hand (the simulation reads
/// eagerly) but the simulated transfer time may still be outstanding on a
/// [`Reactor`]. Call [`PendingGet::wait`] to settle the time and take the
/// bytes; dropping without waiting forgets the ticket (an abandoned prefetch
/// costs nothing extra — the reactor reclaims the slot when the deadline
/// passes).
#[derive(Debug)]
pub struct PendingGet {
    bytes: Bytes,
    ticket: Option<(Arc<Reactor>, Ticket)>,
}

impl PendingGet {
    /// A get whose transfer time was already charged synchronously.
    pub fn ready(bytes: Bytes) -> Self {
        Self { bytes, ticket: None }
    }

    /// A get whose transfer completes at a reactor deadline.
    pub fn deferred(bytes: Bytes, reactor: Arc<Reactor>, ticket: Ticket) -> Self {
        Self { bytes, ticket: Some((reactor, ticket)) }
    }

    /// Whether the simulated transfer has already completed.
    pub fn is_ready(&self) -> bool {
        match &self.ticket {
            None => true,
            Some((r, t)) => r.is_complete(*t),
        }
    }

    /// Number of bytes this get will deliver.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Block until the simulated transfer completes, then take the bytes.
    pub fn wait(mut self) -> Bytes {
        if let Some((r, t)) = self.ticket.take() {
            r.wait(t);
        }
        std::mem::take(&mut self.bytes)
    }
}

impl Drop for PendingGet {
    fn drop(&mut self) {
        if let Some((r, t)) = self.ticket.take() {
            r.forget(t);
        }
    }
}

/// Blob store interface (S3-alike: whole-object put/get).
pub trait ObjectStore: Send + Sync {
    /// Store a blob under `key`, replacing any previous value.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;
    /// Fetch the blob at `key`.
    fn get(&self, key: &str) -> Result<Bytes>;
    /// Remove the blob at `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;
    /// Does a blob exist at `key`? (No latency charge.)
    fn exists(&self, key: &str) -> bool;
    /// Keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Sum of stored blob sizes.
    fn total_bytes(&self) -> u64;

    /// Begin fetching `key` without blocking on the simulated transfer.
    /// Stores without a reactor charge synchronously and return a ready get;
    /// reactor-backed stores return a deferred get whose transfers overlap
    /// with other in-flight operations.
    fn get_begin(&self, key: &str) -> Result<PendingGet> {
        Ok(PendingGet::ready(self.get(key)?))
    }

    /// Fetch `len` bytes of `key` starting at `offset` (clamped to the blob).
    /// The default fetches the whole blob — charging full transfer cost — and
    /// slices; stores that can address sub-ranges override this to charge
    /// only the bytes read (this is what makes tiered head-only index loads
    /// cheap).
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Bytes> {
        let blob = self.get(key)?;
        let start = (offset as usize).min(blob.len());
        let end = start.saturating_add(len as usize).min(blob.len());
        Ok(blob.slice(start..end))
    }

    /// Whether [`ObjectStore::get_begin`] actually defers transfer time
    /// (i.e. the store is reactor-backed). Callers use this to decide if
    /// prefetching buys overlap.
    fn supports_deferred(&self) -> bool {
        false
    }
}

/// Shared handle.
pub type SharedObjectStore = Arc<dyn ObjectStore>;

/// In-memory blob map with injected latency.
pub struct InMemoryObjectStore {
    blobs: RwLock<BTreeMap<String, Bytes>>,
    clock: SharedClock,
    model: LatencyModel,
    metrics: MetricsRegistry,
    /// Metric name prefix, e.g. `"remote"` → counters `remote.get`, …
    label: String,
    /// When set, transfer time is deferred through the reactor so concurrent
    /// gets overlap instead of serializing.
    reactor: Option<Arc<Reactor>>,
}

impl InMemoryObjectStore {
    /// A store charging `model` against `clock` per operation.
    pub fn new(clock: SharedClock, model: LatencyModel, metrics: MetricsRegistry, label: &str) -> Self {
        Self {
            blobs: RwLock::new(&classes::OBJECTSTORE_BLOBS, BTreeMap::new()),
            clock,
            model,
            metrics,
            label: label.into(),
            reactor: None,
        }
    }

    /// A zero-latency store for tests.
    pub fn for_tests() -> Arc<Self> {
        Arc::new(Self::new(
            bh_common::VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "test-store",
        ))
    }

    /// Route transfer-time charges through `reactor` (which must share this
    /// store's clock) so simultaneous transfers cost `max`, not `sum`.
    pub fn with_reactor(mut self, reactor: Arc<Reactor>) -> Self {
        self.reactor = Some(reactor);
        self
    }

    /// Emit the span + counters for `op` and either charge synchronously
    /// (no reactor) or submit the cost and hand back the ticket.
    fn charge_begin(&self, op: &str, bytes: usize) -> Option<(Arc<Reactor>, Ticket)> {
        let mut span = self.metrics.tracer().span(store_span_name(op));
        span.attr("store", self.label.as_str());
        span.attr("bytes", bytes);
        span.attr("sim_nanos", self.model.cost(bytes).as_nanos() as u64);
        self.metrics.counter(&format!("{}.{op}", self.label)).inc();
        self.metrics.counter(&format!("{}.{op}.bytes", self.label)).add(bytes as u64);
        match &self.reactor {
            Some(r) => Some((Arc::clone(r), r.submit_transfer(&self.model, bytes))),
            None => {
                self.model.charge(self.clock.as_ref(), bytes);
                None
            }
        }
    }

    fn charge(&self, op: &str, bytes: usize) {
        if let Some((r, t)) = self.charge_begin(op, bytes) {
            r.wait(t);
        }
    }
}

/// Span names need `&'static str`; map the operation verb once here so both
/// store implementations report the same taxonomy.
fn store_span_name(op: &str) -> &'static str {
    match op {
        "get" => "store.get",
        "put" => "store.put",
        _ => "store.delete",
    }
}

impl ObjectStore for InMemoryObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.charge("put", data.len());
        self.blobs.write().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        Ok(self.get_begin(key)?.wait())
    }

    fn get_begin(&self, key: &str) -> Result<PendingGet> {
        let blob = self
            .blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| BhError::Storage(format!("blob not found: {key}")))?;
        Ok(match self.charge_begin("get", blob.len()) {
            Some((r, t)) => PendingGet::deferred(blob, r, t),
            None => PendingGet::ready(blob),
        })
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Bytes> {
        let blob = self
            .blobs
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| BhError::Storage(format!("blob not found: {key}")))?;
        let start = (offset as usize).min(blob.len());
        let end = start.saturating_add(len as usize).min(blob.len());
        let slice = blob.slice(start..end);
        self.charge("get", slice.len());
        Ok(slice)
    }

    fn supports_deferred(&self) -> bool {
        self.reactor.is_some()
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.charge("delete", 0);
        self.blobs.write().remove(key);
        Ok(())
    }

    fn exists(&self, key: &str) -> bool {
        self.blobs.read().contains_key(key)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.blobs.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }

    fn total_bytes(&self) -> u64 {
        self.blobs.read().values().map(|b| b.len() as u64).sum()
    }
}

/// File-backed store (local disk tier). Keys map to files under `root`;
/// `/` in keys becomes a subdirectory.
pub struct DiskObjectStore {
    root: PathBuf,
    clock: SharedClock,
    model: LatencyModel,
    metrics: MetricsRegistry,
    label: String,
}

impl DiskObjectStore {
    /// A file-backed store rooted at `root`.
    pub fn new(
        root: impl Into<PathBuf>,
        clock: SharedClock,
        model: LatencyModel,
        metrics: MetricsRegistry,
        label: &str,
    ) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root, clock, model, metrics, label: label.into() })
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        if key.contains("..") || key.starts_with('/') {
            return Err(BhError::InvalidArgument(format!("unsafe blob key: {key}")));
        }
        Ok(self.root.join(key))
    }

    fn charge(&self, op: &str, bytes: usize) {
        let mut span = self.metrics.tracer().span(store_span_name(op));
        span.attr("store", self.label.as_str());
        span.attr("bytes", bytes);
        span.attr("sim_nanos", self.model.cost(bytes).as_nanos() as u64);
        self.model.charge(self.clock.as_ref(), bytes);
        self.metrics.counter(&format!("{}.{op}", self.label)).inc();
        self.metrics.counter(&format!("{}.{op}.bytes", self.label)).add(bytes as u64);
    }
}

impl ObjectStore for DiskObjectStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        self.charge("put", data.len());
        // Write-then-rename for atomicity.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_of(key)?;
        let data = std::fs::read(&path)
            .map_err(|e| BhError::Storage(format!("blob not found: {key} ({e})")))?;
        self.charge("get", data.len());
        Ok(Bytes::from(data))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Bytes> {
        use std::io::{Read, Seek, SeekFrom};
        let path = self.path_of(key)?;
        let mut f = std::fs::File::open(&path)
            .map_err(|e| BhError::Storage(format!("blob not found: {key} ({e})")))?;
        let total = f.metadata()?.len();
        let start = offset.min(total);
        let end = start.saturating_add(len).min(total);
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf)?;
        self.charge("get", buf.len());
        Ok(Bytes::from(buf))
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        self.charge("delete", 0);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> bool {
        self.path_of(key).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        fn walk(dir: &std::path::Path, root: &std::path::Path, out: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if p.extension().map(|x| x != "tmp").unwrap_or(true) {
                    if let Ok(rel) = p.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.retain(|k| k.starts_with(prefix));
        out.sort();
        out
    }

    fn total_bytes(&self) -> u64 {
        self.list("")
            .iter()
            .filter_map(|k| self.path_of(k).ok())
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::VirtualClock;
    use std::time::Duration;

    #[test]
    fn memory_store_roundtrip() {
        let s = InMemoryObjectStore::for_tests();
        assert!(!s.exists("a"));
        s.put("a", Bytes::from_static(b"hello")).unwrap();
        assert!(s.exists("a"));
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.total_bytes(), 5);
        s.delete("a").unwrap();
        assert!(s.get("a").is_err());
    }

    #[test]
    fn memory_store_list_by_prefix() {
        let s = InMemoryObjectStore::for_tests();
        s.put("seg-1/col-a", Bytes::new()).unwrap();
        s.put("seg-1/col-b", Bytes::new()).unwrap();
        s.put("seg-2/col-a", Bytes::new()).unwrap();
        assert_eq!(s.list("seg-1/").len(), 2);
        assert_eq!(s.list("seg-").len(), 3);
        assert!(s.list("zzz").is_empty());
    }

    #[test]
    fn latency_is_charged_per_byte() {
        let clock = VirtualClock::shared();
        let model = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(10));
        let m = MetricsRegistry::new();
        let s = InMemoryObjectStore::new(clock.clone(), model, m.clone(), "remote");
        s.put("k", Bytes::from(vec![0u8; 1000])).unwrap();
        // 100µs base + 10ns * 1000 = 110µs
        assert_eq!(clock.now_nanos(), 110_000);
        s.get("k").unwrap();
        assert_eq!(clock.now_nanos(), 220_000);
        assert_eq!(m.counter_value("remote.get"), 1);
        assert_eq!(m.counter_value("remote.put.bytes"), 1000);
    }

    #[test]
    fn reactor_backed_gets_overlap() {
        let clock = VirtualClock::shared();
        let model = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(10));
        let reactor = Reactor::shared(clock.clone());
        let s = InMemoryObjectStore::new(clock.clone(), LatencyModel::ZERO, MetricsRegistry::new(), "remote");
        let s = InMemoryObjectStore { model, ..s }.with_reactor(reactor);
        assert!(s.supports_deferred());
        s.put("a", Bytes::from(vec![0u8; 1000])).unwrap(); // 110µs (put waits)
        s.put("b", Bytes::from(vec![0u8; 2000])).unwrap(); // +120µs
        assert_eq!(clock.now_nanos(), 230_000);
        // Two gets begun before either waits: transfers overlap, so the
        // clock advances by max(110, 120) = 120µs, not 230µs.
        let pa = s.get_begin("a").unwrap();
        let pb = s.get_begin("b").unwrap();
        let a = pa.wait();
        let b = pb.wait();
        assert_eq!((a.len(), b.len()), (1000, 2000));
        assert_eq!(clock.now_nanos(), 230_000 + 120_000);
    }

    #[test]
    fn abandoned_pending_get_charges_nothing_extra() {
        let clock = VirtualClock::shared();
        let model = LatencyModel::fixed(Duration::from_micros(50));
        let reactor = Reactor::shared(clock.clone());
        let s = InMemoryObjectStore::new(clock.clone(), LatencyModel::ZERO, MetricsRegistry::new(), "remote");
        let s = InMemoryObjectStore { model, ..s }.with_reactor(reactor);
        s.put("a", Bytes::from_static(b"x")).unwrap();
        let now = clock.now_nanos();
        let p = s.get_begin("a").unwrap();
        drop(p); // forgotten, never waited
        assert_eq!(clock.now_nanos(), now);
    }

    #[test]
    fn get_range_charges_only_range_bytes() {
        let clock = VirtualClock::shared();
        let model = LatencyModel::new(Duration::ZERO, Duration::from_nanos(10));
        let m = MetricsRegistry::new();
        let s = InMemoryObjectStore::new(clock.clone(), model, m.clone(), "remote");
        s.put("k", Bytes::from(vec![7u8; 1000])).unwrap();
        let after_put = clock.now_nanos();
        let head = s.get_range("k", 0, 100).unwrap();
        assert_eq!(head.len(), 100);
        assert_eq!(clock.now_nanos(), after_put + 1_000); // 100 bytes * 10ns
        // Clamped past-the-end range.
        let tail = s.get_range("k", 900, 500).unwrap();
        assert_eq!(tail.len(), 100);
    }

    #[test]
    fn disk_store_get_range_reads_subrange() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        s.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(s.get_range("k", 2, 3).unwrap(), Bytes::from_static(b"234"));
        assert_eq!(s.get_range("k", 8, 10).unwrap(), Bytes::from_static(b"89"));
        assert_eq!(s.get_range("k", 20, 5).unwrap(), Bytes::new());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        s.put("seg-1/index", Bytes::from_static(b"blob")).unwrap();
        assert!(s.exists("seg-1/index"));
        assert_eq!(s.get("seg-1/index").unwrap(), Bytes::from_static(b"blob"));
        assert_eq!(s.list("seg-1/"), vec!["seg-1/index".to_string()]);
        assert_eq!(s.total_bytes(), 4);
        s.delete("seg-1/index").unwrap();
        assert!(!s.exists("seg-1/index"));
        // Deleting a missing key is fine.
        s.delete("seg-1/index").unwrap();
    }

    #[test]
    fn disk_store_rejects_traversal() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        assert!(s.put("../evil", Bytes::new()).is_err());
        assert!(s.get("/abs").is_err());
    }

    #[test]
    fn disk_store_overwrite() {
        let dir = tempfile::tempdir().unwrap();
        let s = DiskObjectStore::new(
            dir.path(),
            VirtualClock::shared(),
            LatencyModel::ZERO,
            MetricsRegistry::new(),
            "disk",
        )
        .unwrap();
        s.put("k", Bytes::from_static(b"one")).unwrap();
        s.put("k", Bytes::from_static(b"two")).unwrap();
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"two"));
    }
}
