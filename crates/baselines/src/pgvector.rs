//! `PgvectorSim` — a generalized single-node stand-in.
//!
//! Behavioural model:
//!
//! * **One monolithic index** over the whole table (pgvector builds a single
//!   HNSW per column). `finalize` builds it in one pass — and because HNSW
//!   insertion cost grows with graph size, one index of `n` rows costs more
//!   than many segment indexes of `n/k` rows, reproducing pgvector's slowest
//!   Table IV load time.
//! * **Post-filter only, no iteration**: a filtered query runs one index
//!   scan with `ef_search` candidates, then applies the WHERE predicate to
//!   whatever came back. When the filter rejects most candidates the result
//!   has fewer than `k` rows — the `<10%` recall collapse Fig. 9 reports at
//!   tiny pass fractions. (pgvector 0.8's iterative scans post-date the
//!   paper's 0.7.4.)
//! * **No cost-based optimization** and no brute-force fallback rule.

use crate::collection::{SimCollection, SimFilter};
use crate::BaselineSystem;
use bh_common::{BhError, Result};
use bh_vector::{IndexKind, IndexRegistry, IndexSpec, Metric, Neighbor, SearchParams, VectorIndex};
use std::sync::Arc;

/// Configuration for the simulator.
#[derive(Debug, Clone)]
pub struct PgvectorConfig {
    /// Distance metric.
    pub metric: Metric,
    /// HNSW M parameter.
    pub m: usize,
    /// HNSW build beam width.
    pub ef_construction: usize,
    /// Per-query entry overhead: the libpq round trip plus PostgreSQL
    /// parse/plan/executor entry every statement pays. BlendHouse is
    /// measured through its own full in-process SQL engine; this constant
    /// keeps the comparison apples-to-apples (documented in EXPERIMENTS.md).
    pub per_query_overhead: std::time::Duration,
}

impl Default for PgvectorConfig {
    fn default() -> Self {
        Self {
            metric: Metric::L2,
            m: 16,
            ef_construction: 128,
            per_query_overhead: std::time::Duration::from_micros(250),
        }
    }
}

/// The pgvector-like system.
pub struct PgvectorSim {
    cfg: PgvectorConfig,
    dim: usize,
    registry: Arc<IndexRegistry>,
    heap: SimCollection,
    index: Option<Arc<dyn VectorIndex>>,
}

impl PgvectorSim {
    /// A table of the given dimensionality under `cfg`.
    pub fn new(dim: usize, cfg: PgvectorConfig) -> Self {
        Self {
            cfg,
            dim,
            registry: Arc::new(IndexRegistry::with_builtins()),
            heap: SimCollection::new(dim),
            index: None,
        }
    }

    /// A table with default configuration.
    pub fn with_defaults(dim: usize) -> Self {
        Self::new(dim, PgvectorConfig::default())
    }

    /// Has `CREATE INDEX` (finalize) run since the last write?
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }
}

impl BaselineSystem for PgvectorSim {
    fn name(&self) -> &'static str {
        "PgvectorSim"
    }

    fn ingest(&mut self, vectors: &[f32], ids: &[u64], attrs: &[(&str, &[f64])]) -> Result<()> {
        if vectors.len() != ids.len() * self.dim {
            return Err(BhError::DimensionMismatch {
                expected: ids.len() * self.dim,
                got: vectors.len(),
            });
        }
        // Heap writes only; CREATE INDEX happens in finalize.
        self.heap.append(vectors, ids, attrs)?;
        self.index = None; // table changed; the one index is stale
        Ok(())
    }

    fn finalize(&mut self) -> Result<()> {
        if self.heap.is_empty() {
            return Ok(());
        }
        // One monolithic build over the entire heap.
        let spec = IndexSpec::new(IndexKind::Hnsw, self.dim, self.cfg.metric)
            .with_param("m", self.cfg.m)
            .with_param("ef_construction", self.cfg.ef_construction);
        let mut b = self.registry.create_builder(&spec)?;
        // pgvector labels index entries with heap row offsets — and since the
        // heap is one big table, offsets coincide with our row numbers.
        let offsets: Vec<u64> = (0..self.heap.len() as u64).collect();
        b.add_with_ids(&self.heap.vectors, &offsets)?;
        self.index = Some(b.finish()?);
        Ok(())
    }

    fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&SimFilter>,
    ) -> Result<Vec<Neighbor>> {
        if !self.cfg.per_query_overhead.is_zero() {
            std::thread::sleep(self.cfg.per_query_overhead);
        }
        let Some(index) = &self.index else {
            // Sequential scan (no index built) — exact but slow.
            let mut tk = bh_common::TopK::new(k);
            for row in 0..self.heap.len() {
                if filter.map(|f| !f.matches(&self.heap.attrs, row)).unwrap_or(false) {
                    continue;
                }
                tk.push(self.cfg.metric.distance(query, self.heap.vector(row)), row as u64);
            }
            return Ok(tk
                .into_sorted()
                .into_iter()
                .map(|s| Neighbor::new(self.heap.ids[s.item as usize], s.distance))
                .collect());
        };
        // Post-filter, single shot: fetch ef_search candidates (unfiltered),
        // then apply the predicate. No retry with larger ef — results may
        // come up short (the recall-collapse behaviour).
        let fetch = params.ef_search.max(k);
        let candidates = index.search_with_filter(query, fetch, params, None)?;
        let mut out = Vec::with_capacity(k);
        for nb in candidates {
            let row = nb.id as usize;
            if filter.map(|f| f.matches(&self.heap.attrs, row)).unwrap_or(true) {
                out.push(Neighbor::new(self.heap.ids[row], nb.distance));
                if out.len() == k {
                    break;
                }
            }
        }
        Ok(out)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::rng::rng;
    use rand::Rng;

    fn load(n: usize, dim: usize) -> PgvectorSim {
        let mut sys = PgvectorSim::with_defaults(dim);
        let mut r = rng(9);
        let vectors: Vec<f32> = (0..n * dim)
            .map(|i| ((i / dim) % 4) as f32 * 10.0 + r.gen_range(-0.5..0.5))
            .collect();
        let ids: Vec<u64> = (0..n as u64).map(|i| i + 1000).collect(); // ids ≠ offsets
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        sys.ingest(&vectors, &ids, &[("x", &xs)]).unwrap();
        sys.finalize().unwrap();
        sys
    }

    #[test]
    fn unfiltered_search_works() {
        let sys = load(600, 4);
        let got = sys.search(&[0.0; 4], 10, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 10);
        for nb in &got {
            assert_eq!((nb.id - 1000) % 4, 0);
        }
    }

    #[test]
    fn recall_collapses_under_selective_filters() {
        let sys = load(2000, 4);
        // Only rows 0..20 of 2000 pass (1%): a single ef=40 scan finds at
        // most a handful of them.
        let f = SimFilter::range("x", 0.0, 19.0);
        let got = sys
            .search(&[0.0; 4], 20, &SearchParams::default().with_ef(40), Some(&f))
            .unwrap();
        assert!(
            got.len() < 20,
            "post-filter without iteration should come up short, got {}",
            got.len()
        );
        // Larger ef recovers more — the knob-vs-architecture trade-off.
        let more = sys
            .search(&[0.0; 4], 20, &SearchParams::default().with_ef(2000), Some(&f))
            .unwrap();
        assert!(more.len() > got.len());
    }

    #[test]
    fn ids_map_through_heap_offsets() {
        let sys = load(100, 4);
        let got = sys.search(&[0.0; 4], 1, &SearchParams::default(), None).unwrap();
        assert!(got[0].id >= 1000, "must return user ids, not offsets");
    }

    #[test]
    fn search_without_index_is_sequential_but_exact() {
        let mut sys = PgvectorSim::with_defaults(2);
        let xs: Vec<f64> = vec![0.0, 1.0, 2.0];
        sys.ingest(&[0.0, 0.0, 5.0, 5.0, 9.0, 9.0], &[10, 11, 12], &[("x", &xs)]).unwrap();
        assert!(!sys.has_index());
        let got = sys.search(&[4.9, 4.9], 1, &SearchParams::default(), None).unwrap();
        assert_eq!(got[0].id, 11);
    }

    #[test]
    fn ingest_invalidates_index() {
        let mut sys = load(100, 4);
        assert!(sys.has_index());
        let xs = [0.0f64];
        sys.ingest(&[0.0; 4], &[9999], &[("x", &xs[..])]).unwrap();
        assert!(!sys.has_index(), "new rows invalidate the monolithic index");
        sys.finalize().unwrap();
        assert!(sys.has_index());
    }
}
