//! # bh-baselines — simulated comparator systems
//!
//! The paper's evaluation compares BlendHouse against Milvus 2.4.5
//! (specialized, cloud-native) and pgvector 0.7.4 (generalized,
//! single-node). We cannot run those systems here, so this crate implements
//! **behavioural stand-ins** that share our index library (removing
//! index-implementation quality from the comparison) but reproduce exactly
//! the *strategy restrictions* the paper attributes the performance gaps to:
//!
//! | Behaviour | [`MilvusSim`] | [`PgvectorSim`] |
//! |---|---|---|
//! | Ingest | segments sealed during write, **indexes built serially after** (staged; Table IV) | single monolithic index built after load — the big graph makes each insertion walk a deeper structure |
//! | Filtered search | pre-filter bitmap, plus Milvus' rule-based brute-force fallback when few rows pass | **post-filter only**: one fixed-ef search, filter afterwards, no iteration — recall collapses when the filter rejects most candidates (Fig. 9's `<10%` recall) |
//! | Cost-based optimization | none (one rule) | none |
//! | Serving on cache miss | none — a segment must be loaded before answering | n/a (single node) |
//!
//! Both systems operate on the same simple collection model (ids + numeric
//! attributes + vectors) the VectorBench-style workloads use.

pub mod collection;
pub mod milvus;
pub mod pgvector;

pub use collection::{SimCollection, SimFilter};
pub use milvus::MilvusSim;
pub use pgvector::PgvectorSim;

use bh_common::Result;
use bh_vector::{Neighbor, SearchParams};

/// Common interface the benchmark harness drives.
pub trait BaselineSystem: Send + Sync {
    /// System label used in printed tables.
    fn name(&self) -> &'static str;

    /// Append a batch (row-major vectors + per-attribute columns).
    fn ingest(&mut self, vectors: &[f32], ids: &[u64], attrs: &[(&str, &[f64])]) -> Result<()>;

    /// Finish ingest: build/seal whatever indexes are still pending. Load
    /// time in Table IV is ingest + finalize.
    fn finalize(&mut self) -> Result<()>;

    /// Top-k search with an optional conjunctive attribute filter.
    fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&SimFilter>,
    ) -> Result<Vec<Neighbor>>;

    /// Number of ingested rows.
    fn len(&self) -> usize;

    /// True when nothing has been ingested.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
