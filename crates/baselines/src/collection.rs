//! The shared collection model and filters the baseline systems operate on.

use bh_common::{BhError, Bitset, Result};
use std::collections::BTreeMap;

/// A conjunction of numeric range conditions over named attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimFilter {
    /// `(attribute, lo, hi)` inclusive ranges, ANDed.
    pub ranges: Vec<(String, f64, f64)>,
}

impl SimFilter {
    /// A single-range filter.
    pub fn range(attr: &str, lo: f64, hi: f64) -> SimFilter {
        SimFilter { ranges: vec![(attr.into(), lo, hi)] }
    }

    /// Add another conjunctive range.
    pub fn and(mut self, attr: &str, lo: f64, hi: f64) -> SimFilter {
        self.ranges.push((attr.into(), lo, hi));
        self
    }

    /// Does row `row` of the given attribute columns pass every range?
    pub fn matches(&self, attrs: &BTreeMap<String, Vec<f64>>, row: usize) -> bool {
        self.ranges.iter().all(|(a, lo, hi)| {
            attrs
                .get(a)
                .map(|col| {
                    let v = col[row];
                    v >= *lo && v <= *hi
                })
                .unwrap_or(false)
        })
    }
}

/// Columnar storage for one baseline collection (or one segment of it).
#[derive(Debug, Default, Clone)]
pub struct SimCollection {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Row ids in insertion order.
    pub ids: Vec<u64>,
    /// Row-major embeddings.
    pub vectors: Vec<f32>,
    /// Named numeric attribute columns.
    pub attrs: BTreeMap<String, Vec<f64>>,
}

impl SimCollection {
    /// An empty collection of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self { dim, ..Default::default() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Embedding of one row.
    pub fn vector(&self, row: usize) -> &[f32] {
        &self.vectors[row * self.dim..(row + 1) * self.dim]
    }

    /// Append a batch; attribute sets must be consistent across batches.
    pub fn append(&mut self, vectors: &[f32], ids: &[u64], attrs: &[(&str, &[f64])]) -> Result<()> {
        if self.dim == 0 {
            return Err(BhError::InvalidArgument("collection dim is zero".into()));
        }
        if vectors.len() != ids.len() * self.dim {
            return Err(BhError::DimensionMismatch {
                expected: ids.len() * self.dim,
                got: vectors.len(),
            });
        }
        for (name, col) in attrs {
            if col.len() != ids.len() {
                return Err(BhError::InvalidArgument(format!(
                    "attribute {name} has {} values for {} rows",
                    col.len(),
                    ids.len()
                )));
            }
        }
        let existing_attrs: Vec<&String> = self.attrs.keys().collect();
        if !self.is_empty() {
            let incoming: Vec<&str> = attrs.iter().map(|(n, _)| *n).collect();
            for name in &existing_attrs {
                if !incoming.contains(&name.as_str()) {
                    return Err(BhError::InvalidArgument(format!(
                        "batch missing attribute {name}"
                    )));
                }
            }
        }
        self.ids.extend_from_slice(ids);
        self.vectors.extend_from_slice(vectors);
        for (name, col) in attrs {
            self.attrs.entry(name.to_string()).or_default().extend_from_slice(col);
        }
        Ok(())
    }

    /// Bitset (over *row offsets*) of rows passing the filter.
    pub fn filter_bitset(&self, filter: &SimFilter) -> Bitset {
        let mut b = Bitset::new(self.len());
        for row in 0..self.len() {
            if filter.matches(&self.attrs, row) {
                b.set(row);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimCollection {
        let mut c = SimCollection::new(2);
        let vecs: Vec<f32> = (0..10).flat_map(|i| [i as f32, i as f32]).collect();
        let ids: Vec<u64> = (0..10).collect();
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        c.append(&vecs, &ids, &[("x", &xs)]).unwrap();
        c
    }

    #[test]
    fn append_and_access() {
        let c = sample();
        assert_eq!(c.len(), 10);
        assert_eq!(c.vector(3), &[3.0, 3.0]);
        assert_eq!(c.attrs["x"][7], 7.0);
    }

    #[test]
    fn filter_semantics() {
        let c = sample();
        let f = SimFilter::range("x", 2.0, 5.0);
        let b = c.filter_bitset(&f);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        // Conjunction narrows.
        let f2 = SimFilter::range("x", 2.0, 5.0).and("x", 4.0, 9.0);
        assert_eq!(c.filter_bitset(&f2).iter().collect::<Vec<_>>(), vec![4, 5]);
        // Unknown attribute matches nothing.
        let f3 = SimFilter::range("nope", 0.0, 100.0);
        assert!(c.filter_bitset(&f3).is_all_clear());
    }

    #[test]
    fn shape_errors() {
        let mut c = SimCollection::new(2);
        assert!(c.append(&[1.0; 3], &[1], &[]).is_err());
        let xs = [1.0f64];
        assert!(c.append(&[1.0, 2.0], &[1, 2], &[("x", &xs[..])]).is_err());
        c.append(&[1.0, 2.0], &[1], &[("x", &xs[..])]).unwrap();
        // Later batch must carry the same attributes.
        assert!(c.append(&[3.0, 4.0], &[2], &[]).is_err());
    }
}
