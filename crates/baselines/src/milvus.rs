//! `MilvusSim` — a specialized-vector-database stand-in.
//!
//! Behavioural model (matching the aspects §V measures):
//!
//! * **Segmented storage**: rows accumulate into fixed-size segments, like
//!   Milvus growing → sealed segments.
//! * **Staged ingest**: segment data is written during ingest but indexes
//!   are built *serially afterwards* (`finalize` = Milvus flush + index
//!   build + load). End-to-end load time therefore cannot overlap write and
//!   build — the Table IV gap against BlendHouse's pipelined ingest.
//! * **Filtered search = pre-filter bitmap** over each segment, with Milvus'
//!   one rule: when the bitmap leaves fewer than `brute_force_threshold · k`
//!   candidates, skip the index and compute exact distances on the
//!   survivors (this is why Milvus also does well at tiny pass fractions in
//!   Fig. 9 — but it has no cost model choosing among richer strategies).
//! * **Must load before serving**: searching before `finalize` (or after
//!   `unload`) falls back to brute force over raw vectors, modelling the
//!   "wait for segment load" behaviour the elasticity experiment punishes.

use crate::collection::{SimCollection, SimFilter};
use crate::BaselineSystem;
use bh_common::{BhError, Result, TopK};
use bh_vector::{IndexKind, IndexRegistry, IndexSpec, Metric, Neighbor, SearchParams, VectorIndex};
use std::sync::Arc;

/// One sealed segment with (eventually) an index.
struct MilvusSegment {
    data: SimCollection,
    index: Option<Arc<dyn VectorIndex>>,
}

/// Configuration for the simulator.
#[derive(Debug, Clone)]
pub struct MilvusConfig {
    /// Rows per sealed segment.
    pub segment_rows: usize,
    /// Index algorithm per segment.
    pub index: IndexKind,
    /// Distance metric.
    pub metric: Metric,
    /// HNSW M parameter.
    pub m: usize,
    /// HNSW build beam width.
    pub ef_construction: usize,
    /// Brute-force fallback when `bitmap.count() < threshold · k`.
    pub brute_force_threshold: usize,
    /// Per-query entry overhead: the gRPC round trip plus proxy→querynode
    /// coordination a Milvus deployment pays on every request. BlendHouse
    /// is measured through its own full in-process SQL engine; this constant
    /// keeps the comparison apples-to-apples (documented in EXPERIMENTS.md).
    pub per_query_overhead: std::time::Duration,
}

impl Default for MilvusConfig {
    fn default() -> Self {
        Self {
            segment_rows: 2048,
            index: IndexKind::Hnsw,
            metric: Metric::L2,
            m: 16,
            ef_construction: 128,
            brute_force_threshold: 64,
            per_query_overhead: std::time::Duration::from_micros(250),
        }
    }
}

/// The Milvus-like system.
pub struct MilvusSim {
    cfg: MilvusConfig,
    dim: usize,
    registry: Arc<IndexRegistry>,
    segments: Vec<MilvusSegment>,
    /// Growing (unsealed) segment.
    growing: SimCollection,
    loaded: bool,
}

impl MilvusSim {
    /// A collection of the given dimensionality under `cfg`.
    pub fn new(dim: usize, cfg: MilvusConfig) -> Self {
        Self {
            cfg,
            dim,
            registry: Arc::new(IndexRegistry::with_builtins()),
            segments: Vec::new(),
            growing: SimCollection::new(dim),
            loaded: false,
        }
    }

    /// A collection with default configuration.
    pub fn with_defaults(dim: usize) -> Self {
        Self::new(dim, MilvusConfig::default())
    }

    /// Drop all in-memory indexes (collection released) — searches fall back
    /// to brute force until `finalize` loads them again.
    pub fn unload(&mut self) {
        for seg in &mut self.segments {
            seg.index = None;
        }
        self.loaded = false;
    }

    /// Have all sealed segments been indexed and loaded?
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Sealed segments plus the growing one (if non-empty).
    pub fn segment_count(&self) -> usize {
        self.segments.len() + usize::from(!self.growing.is_empty())
    }

    fn seal_growing(&mut self) {
        if self.growing.is_empty() {
            return;
        }
        let sealed = std::mem::replace(&mut self.growing, SimCollection::new(self.dim));
        self.segments.push(MilvusSegment { data: sealed, index: None });
    }

    fn build_index(&self, data: &SimCollection) -> Result<Arc<dyn VectorIndex>> {
        let spec = IndexSpec::new(self.cfg.index, self.dim, self.cfg.metric)
            .with_param("m", self.cfg.m)
            .with_param("ef_construction", self.cfg.ef_construction);
        let mut b = self.registry.create_builder(&spec)?;
        if b.requires_training() {
            b.train(&data.vectors)?;
        }
        let offsets: Vec<u64> = (0..data.len() as u64).collect();
        b.add_with_ids(&data.vectors, &offsets)?;
        b.finish()
    }

    fn search_segment(
        &self,
        seg: &MilvusSegment,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&SimFilter>,
        out: &mut TopK<u64>,
    ) -> Result<()> {
        let bits = filter.map(|f| seg.data.filter_bitset(f));
        if let Some(b) = &bits {
            if b.is_all_clear() {
                return Ok(());
            }
            // Milvus' rule: tiny candidate sets skip the index entirely.
            if b.count() < self.cfg.brute_force_threshold.saturating_mul(k) {
                for row in b.iter() {
                    let d = self.cfg.metric.distance(query, seg.data.vector(row));
                    out.push(d, seg.data.ids[row]);
                }
                return Ok(());
            }
        }
        match &seg.index {
            Some(idx) => {
                let hits = idx.search_with_filter(query, k, params, bits.as_ref())?;
                for nb in hits {
                    out.push(nb.distance, seg.data.ids[nb.id as usize]);
                }
            }
            None => {
                // Not loaded: brute force over (filtered) raw vectors.
                for row in 0..seg.data.len() {
                    if bits.as_ref().map(|b| !b.contains(row)).unwrap_or(false) {
                        continue;
                    }
                    let d = self.cfg.metric.distance(query, seg.data.vector(row));
                    out.push(d, seg.data.ids[row]);
                }
            }
        }
        Ok(())
    }
}

impl BaselineSystem for MilvusSim {
    fn name(&self) -> &'static str {
        "MilvusSim"
    }

    fn ingest(&mut self, vectors: &[f32], ids: &[u64], attrs: &[(&str, &[f64])]) -> Result<()> {
        if vectors.len() != ids.len() * self.dim {
            return Err(BhError::DimensionMismatch {
                expected: ids.len() * self.dim,
                got: vectors.len(),
            });
        }
        // Fill the growing segment, sealing at the size limit. Data is
        // "written" immediately; index building waits for finalize (staged).
        let mut start = 0usize;
        while start < ids.len() {
            let room = self.cfg.segment_rows - self.growing.len();
            let take = room.min(ids.len() - start);
            let vec_slice = &vectors[start * self.dim..(start + take) * self.dim];
            let id_slice = &ids[start..start + take];
            let attr_slices: Vec<(&str, Vec<f64>)> = attrs
                .iter()
                .map(|(n, col)| (*n, col[start..start + take].to_vec()))
                .collect();
            let attr_refs: Vec<(&str, &[f64])> =
                attr_slices.iter().map(|(n, c)| (*n, c.as_slice())).collect();
            self.growing.append(vec_slice, id_slice, &attr_refs)?;
            if self.growing.len() >= self.cfg.segment_rows {
                self.seal_growing();
            }
            start += take;
        }
        Ok(())
    }

    fn finalize(&mut self) -> Result<()> {
        self.seal_growing();
        // Serial index build over every sealed segment (the staged phase).
        for i in 0..self.segments.len() {
            if self.segments[i].index.is_none() {
                let idx = self.build_index(&self.segments[i].data)?;
                self.segments[i].index = Some(idx);
            }
        }
        self.loaded = true;
        Ok(())
    }

    fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        filter: Option<&SimFilter>,
    ) -> Result<Vec<Neighbor>> {
        if !self.cfg.per_query_overhead.is_zero() {
            std::thread::sleep(self.cfg.per_query_overhead);
        }
        let mut out = TopK::new(k);
        for seg in &self.segments {
            self.search_segment(seg, query, k, params, filter, &mut out)?;
        }
        // Growing segment is always brute-forced (Milvus growing segments
        // are searched without an index).
        for row in 0..self.growing.len() {
            if filter.map(|f| !f.matches(&self.growing.attrs, row)).unwrap_or(false) {
                continue;
            }
            let d = self.cfg.metric.distance(query, self.growing.vector(row));
            out.push(d, self.growing.ids[row]);
        }
        Ok(out.into_sorted().into_iter().map(|s| Neighbor::new(s.item, s.distance)).collect())
    }

    fn len(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum::<usize>() + self.growing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_common::rng::rng;
    use rand::Rng;

    fn load(n: usize, dim: usize, seal: bool) -> MilvusSim {
        let mut sys = MilvusSim::new(
            dim,
            MilvusConfig { segment_rows: 256, ..Default::default() },
        );
        let mut r = rng(7);
        let vectors: Vec<f32> = (0..n)
            .flat_map(|i| {
                let c = (i % 4) as f32 * 10.0;
                (0..dim).map(move |_| c).collect::<Vec<_>>()
            })
            .map(|v| v + r.gen_range(-0.5..0.5))
            .collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        sys.ingest(&vectors, &ids, &[("x", &xs)]).unwrap();
        if seal {
            sys.finalize().unwrap();
        }
        sys
    }

    #[test]
    fn ingest_seals_segments_and_finalize_builds_indexes() {
        let sys = load(1000, 4, false);
        assert_eq!(sys.len(), 1000);
        assert!(sys.segment_count() >= 3);
        assert!(sys.segments.iter().all(|s| s.index.is_none()), "staged: no index yet");
        let sys = load(1000, 4, true);
        assert!(sys.segments.iter().all(|s| s.index.is_some()));
    }

    #[test]
    fn search_finds_nearest_cluster() {
        let sys = load(800, 4, true);
        let got = sys.search(&[10.0; 4], 10, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 10);
        for nb in &got {
            assert_eq!(nb.id % 4, 1, "row {} not from cluster 1", nb.id);
        }
    }

    #[test]
    fn filtered_search_respects_ranges() {
        let sys = load(800, 4, true);
        let f = SimFilter::range("x", 100.0, 200.0);
        let got = sys.search(&[0.0; 4], 5, &SearchParams::default(), Some(&f)).unwrap();
        assert!(!got.is_empty());
        for nb in &got {
            assert!((100..=200).contains(&(nb.id as i64)), "id {}", nb.id);
        }
    }

    #[test]
    fn tiny_candidate_sets_brute_force_with_full_recall() {
        let sys = load(800, 4, true);
        // Only 3 rows pass → rule-based brute force → exact results.
        let f = SimFilter::range("x", 10.0, 12.0);
        let got = sys.search(&[0.0; 4], 3, &SearchParams::default(), Some(&f)).unwrap();
        let ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 12]);
    }

    #[test]
    fn unloaded_collection_still_answers_via_brute_force() {
        let mut sys = load(500, 4, true);
        sys.unload();
        let got = sys.search(&[0.0; 4], 5, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 5);
        for nb in &got {
            assert_eq!(nb.id % 4, 0);
        }
    }

    #[test]
    fn growing_segment_is_searchable_before_seal() {
        let sys = load(100, 4, false); // 100 < 256 → all rows in growing
        assert_eq!(sys.segment_count(), 1);
        let got = sys.search(&[0.0; 4], 3, &SearchParams::default(), None).unwrap();
        assert_eq!(got.len(), 3);
    }
}
