//! Abstract syntax tree of the BlendHouse SQL dialect.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE …`.
    CreateTable(CreateTable),
    /// `INSERT INTO …`.
    Insert(InsertStmt),
    /// `SELECT …`.
    Select(SelectStmt),
    /// `UPDATE … SET …`.
    Update(UpdateStmt),
    /// `DELETE FROM …`.
    Delete(DeleteStmt),
    /// `EXPLAIN SELECT …` — show the plan instead of executing.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT …` — execute with tracing enabled and render
    /// the profiled stage tree.
    ExplainAnalyze(SelectStmt),
    /// `SYSTEM METRICS` — dump every registered metric in Prometheus text
    /// format.
    SystemMetrics,
    /// `SYSTEM TRACE EXPORT` — render the retained slow-query span trees as
    /// chrome://tracing JSON.
    SystemTraceExport,
}

/// `CREATE TABLE name (…) ORDER BY … PARTITION BY … CLUSTER BY …`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// `(column name, type text)` in declaration order.
    pub columns: Vec<(String, String)>,
    /// Vector index declarations.
    pub indexes: Vec<IndexDefAst>,
    /// Sort-key columns.
    pub order_by: Vec<String>,
    /// Scalar partition-key expressions.
    pub partition_by: Vec<PartitionExpr>,
    /// `CLUSTER BY col INTO n BUCKETS`.
    pub cluster_by: Option<(String, usize)>,
}

/// `INDEX ann_idx embedding TYPE HNSW('DIM=960', 'M=32')`.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDefAst {
    /// Index name.
    pub name: String,
    /// Indexed (vector) column.
    pub column: String,
    /// Index type name (`HNSW`, `IVFPQFS`, …).
    pub index_type: String,
    /// Raw `'KEY=VALUE'` parameter strings.
    pub params: Vec<String>,
}

/// A partition-key element: a column, optionally wrapped in one function
/// (`toYYYYMMDD(published_time)`).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionExpr {
    /// Underlying partition column.
    pub column: String,
    /// Optional wrapping function name.
    pub func: Option<String>,
}

/// `INSERT INTO t VALUES (…), (…)` or `INSERT INTO t CSV INFILE '…'`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertStmt {
    /// `INSERT INTO t VALUES (…), (…)`.
    Values {
        /// Target table.
        table: String,
        /// Literal rows in schema column order.
        rows: Vec<Vec<Lit>>,
    },
    /// `INSERT INTO t CSV INFILE '…'`.
    CsvFile {
        /// Target table.
        table: String,
        /// CSV file path.
        path: String,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Output expressions.
    pub projection: Vec<SelectItem>,
    /// Source table.
    pub table: String,
    /// `WHERE` expression, if any.
    pub where_clause: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS name`, if present.
        alias: Option<String>,
    },
}

/// `ORDER BY <expr> [AS alias] [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// `AS name`, if present.
    pub alias: Option<String>,
    /// Ascending (`true`) or `DESC`.
    pub asc: bool,
}

/// `UPDATE t SET c = v, … WHERE …`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `(column, new value)` assignments.
    pub assignments: Vec<(String, Lit)>,
    /// `WHERE` expression, if any.
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM t WHERE …`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// `WHERE` expression, if any.
    pub where_clause: Option<Expr>,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `[1.0, 2.5, …]` — embedding literals.
    Array(Vec<f64>),
    /// `NULL`.
    Null,
}

/// Binary operators, loosest-binding first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names are self-describing
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinaryOp {
    /// True for the six comparison operators (not AND/OR).
    pub fn is_comparison(&self) -> bool {
        !matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields mirror the SQL surface directly
pub enum Expr {
    /// A bare column reference.
    Column(String),
    /// A literal value.
    Literal(Lit),
    /// `lhs <op> rhs`.
    Binary { op: BinaryOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between { expr: Box<Expr>, lo: Box<Expr>, hi: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (…)`.
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `name(arg, …)` — distance functions, partition helpers.
    FuncCall { name: String, args: Vec<Expr> },
    /// `expr REGEXP 'pattern'` / `match(expr, 'pattern')`.
    Regexp { expr: Box<Expr>, pattern: String },
}

impl Expr {
    /// A column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.into())
    }

    /// A literal expression.
    pub fn lit(l: Lit) -> Expr {
        Expr::Literal(l)
    }

    /// A binary expression.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Is this expression a call to one of the known distance functions?
    /// Returns `(metric function name, args)`.
    pub fn as_distance_call(&self) -> Option<(&str, &[Expr])> {
        match self {
            Expr::FuncCall { name, args } => {
                let n = name.as_str();
                if n.eq_ignore_ascii_case("L2Distance")
                    || n.eq_ignore_ascii_case("IPDistance")
                    || n.eq_ignore_ascii_case("CosineDistance")
                {
                    Some((n, args))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Float(v) => write!(f, "{v}"),
            Lit::Str(s) => write!(f, "'{s}'"),
            Lit::Array(v) => write!(f, "[{} floats]", v.len()),
            Lit::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_call_detection() {
        let e = Expr::FuncCall {
            name: "l2distance".into(),
            args: vec![Expr::col("emb"), Expr::lit(Lit::Array(vec![1.0]))],
        };
        let (name, args) = e.as_distance_call().unwrap();
        assert_eq!(name, "l2distance");
        assert_eq!(args.len(), 2);
        let other = Expr::FuncCall { name: "toYYYYMMDD".into(), args: vec![] };
        assert!(other.as_distance_call().is_none());
        assert!(Expr::col("x").as_distance_call().is_none());
    }

    #[test]
    fn operator_classes() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(BinaryOp::Ge.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
    }

    #[test]
    fn literal_display() {
        assert_eq!(Lit::Int(-3).to_string(), "-3");
        assert_eq!(Lit::Str("a".into()).to_string(), "'a'");
        assert_eq!(Lit::Array(vec![0.0; 2]).to_string(), "[2 floats]");
    }
}
