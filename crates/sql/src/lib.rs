//! # bh-sql — the BlendHouse hybrid-query SQL dialect
//!
//! Implements the subset of ByteHouse SQL that the paper's Example 1 and
//! evaluation workloads exercise:
//!
//! * `CREATE TABLE` with column types, `INDEX <name> <col> TYPE <kind>(…)`
//!   vector indexes, `ORDER BY`, `PARTITION BY` (columns or simple function
//!   wrappers), and `CLUSTER BY <col> INTO n BUCKETS`;
//! * `INSERT INTO … VALUES (…), (…)` with array literals for embeddings;
//! * `SELECT … FROM … WHERE … ORDER BY L2Distance(col, [q…]) LIMIT k`
//!   hybrid queries — distance functions as ordinary expressions, so they
//!   compose with filters exactly as §II-B requires;
//! * `UPDATE … SET … WHERE …` and `DELETE FROM … WHERE …`.
//!
//! The crate stops at the AST; plan construction lives in `bh-query`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinaryOp, CreateTable, DeleteStmt, Expr, IndexDefAst, InsertStmt, Lit, OrderItem,
    PartitionExpr, SelectItem, SelectStmt, Statement, UpdateStmt,
};
pub use parser::parse_statement;
