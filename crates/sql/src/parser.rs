//! Recursive-descent parser for the BlendHouse dialect.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use bh_common::{BhError, Result};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn pos_of_current(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> BhError {
        BhError::Parse(format!("{msg} at byte {} (near {:?})", self.pos_of_current(), self.peek()))
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().ident().map(|s| s.eq_ignore_ascii_case(kw)).unwrap_or(false)
    }

    fn peek_kw_at(&self, n: usize, kw: &str) -> bool {
        self.peek_at(n).ident().map(|s| s.eq_ignore_ascii_case(kw)).unwrap_or(false)
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn eat_semicolons(&mut self) {
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.advance();
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("trailing input after statement"))
        }
    }

    // ------------------------------------------------------------ statements

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_kw("EXPLAIN") {
            self.advance();
            if self.eat_kw("ANALYZE") {
                Ok(Statement::ExplainAnalyze(self.parse_select()?))
            } else {
                Ok(Statement::Explain(self.parse_select()?))
            }
        } else if self.peek_kw("SYSTEM") {
            self.advance();
            if self.eat_kw("TRACE") {
                self.expect_kw("EXPORT")?;
                Ok(Statement::SystemTraceExport)
            } else {
                self.expect_kw("METRICS")?;
                Ok(Statement::SystemMetrics)
            }
        } else if self.peek_kw("CREATE") {
            Ok(Statement::CreateTable(self.parse_create_table()?))
        } else if self.peek_kw("INSERT") {
            Ok(Statement::Insert(self.parse_insert()?))
        } else if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.peek_kw("UPDATE") {
            Ok(Statement::Update(self.parse_update()?))
        } else if self.peek_kw("DELETE") {
            Ok(Statement::Delete(self.parse_delete()?))
        } else {
            Err(self.err("expected CREATE, INSERT, SELECT, UPDATE, DELETE, EXPLAIN or SYSTEM"))
        }
    }

    fn parse_create_table(&mut self) -> Result<CreateTable> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.expect_ident("table name")?;
        self.expect(&TokenKind::LParen, "(")?;

        let mut columns = Vec::new();
        let mut indexes = Vec::new();
        loop {
            if self.peek_kw("INDEX") {
                self.advance();
                let idx_name = self.expect_ident("index name")?;
                let column = self.expect_ident("index column")?;
                self.expect_kw("TYPE")?;
                let index_type = self.expect_ident("index type")?;
                let mut params = Vec::new();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.advance();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        match self.advance() {
                            TokenKind::Str(s) => params.push(s),
                            _ => return Err(self.err("expected 'KEY=VALUE' index parameter")),
                        }
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.advance();
                        }
                    }
                    self.expect(&TokenKind::RParen, ")")?;
                }
                indexes.push(IndexDefAst { name: idx_name, column, index_type, params });
            } else {
                let col = self.expect_ident("column name")?;
                let ty = self.parse_type_text()?;
                columns.push((col, ty));
            }
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
                continue;
            }
            break;
        }
        self.expect(&TokenKind::RParen, ")")?;

        let mut order_by = Vec::new();
        let mut partition_by = Vec::new();
        let mut cluster_by = None;
        loop {
            if self.peek_kw("ORDER") {
                self.advance();
                self.expect_kw("BY")?;
                order_by = self.parse_name_list()?;
            } else if self.peek_kw("PARTITION") {
                self.advance();
                self.expect_kw("BY")?;
                partition_by = self.parse_partition_exprs()?;
            } else if self.peek_kw("CLUSTER") {
                self.advance();
                self.expect_kw("BY")?;
                let column = self.expect_ident("cluster column")?;
                self.expect_kw("INTO")?;
                let buckets = match self.advance() {
                    TokenKind::Int(n) if n > 0 => n as usize,
                    _ => return Err(self.err("expected positive bucket count")),
                };
                self.expect_kw("BUCKETS")?;
                cluster_by = Some((column, buckets));
            } else {
                break;
            }
        }
        Ok(CreateTable { name, columns, indexes, order_by, partition_by, cluster_by })
    }

    /// Column type text: `UInt64`, `Array(Float32)`, `DateTime`, ….
    fn parse_type_text(&mut self) -> Result<String> {
        let base = self.expect_ident("column type")?;
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            let inner = self.expect_ident("inner type")?;
            self.expect(&TokenKind::RParen, ")")?;
            Ok(format!("{base}({inner})"))
        } else {
            Ok(base)
        }
    }

    /// `col` | `(col, col, …)`.
    fn parse_name_list(&mut self) -> Result<Vec<String>> {
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            let mut out = Vec::new();
            loop {
                out.push(self.expect_ident("column name")?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, ")")?;
            Ok(out)
        } else {
            Ok(vec![self.expect_ident("column name")?])
        }
    }

    /// Partition exprs: `col`, `func(col)`, or a parenthesized list thereof.
    fn parse_partition_exprs(&mut self) -> Result<Vec<PartitionExpr>> {
        let parse_one = |p: &mut Parser| -> Result<PartitionExpr> {
            let name = p.expect_ident("partition column or function")?;
            if matches!(p.peek(), TokenKind::LParen) {
                p.advance();
                let column = p.expect_ident("partitioned column")?;
                p.expect(&TokenKind::RParen, ")")?;
                Ok(PartitionExpr { column, func: Some(name) })
            } else {
                Ok(PartitionExpr { column: name, func: None })
            }
        };
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            let mut out = Vec::new();
            loop {
                out.push(parse_one(self)?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, ")")?;
            Ok(out)
        } else {
            Ok(vec![parse_one(self)?])
        }
    }

    fn parse_insert(&mut self) -> Result<InsertStmt> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.expect_ident("table name")?;
        if self.eat_kw("CSV") {
            self.expect_kw("INFILE")?;
            match self.advance() {
                TokenKind::Str(path) => Ok(InsertStmt::CsvFile { table, path }),
                _ => Err(self.err("expected file path string")),
            }
        } else {
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen, "(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_literal()?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, ")")?;
                rows.push(row);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            Ok(InsertStmt::Values { table, rows })
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut projection = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::Star) {
                self.advance();
                projection.push(SelectItem::Star);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident("alias")?)
                } else {
                    None
                };
                projection.push(SelectItem::Expr { expr, alias });
            }
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident("alias")?)
                } else {
                    None
                };
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, alias, asc });
                if matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected LIMIT count")),
            }
        } else {
            None
        };
        Ok(SelectStmt { projection, table, where_clause, order_by, limit })
    }

    fn parse_update(&mut self) -> Result<UpdateStmt> {
        self.expect_kw("UPDATE")?;
        let table = self.expect_ident("table name")?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            self.expect(&TokenKind::Eq, "=")?;
            assignments.push((col, self.parse_literal()?));
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(UpdateStmt { table, assignments, where_clause })
    }

    fn parse_delete(&mut self) -> Result<DeleteStmt> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.expect_ident("table name")?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(DeleteStmt { table, where_clause })
    }

    // ----------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek_kw("OR") {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        // BETWEEN's bound-separating AND never reaches this level: it is
        // consumed inside parse_comparison before control returns here.
        let mut lhs = self.parse_not()?;
        while self.peek_kw("AND") {
            self.advance();
            let rhs = self.parse_not()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.peek_kw("NOT") && !self.peek_kw_at(1, "BETWEEN") && !self.peek_kw_at(1, "IN") {
            self.advance();
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_primary()?;

        // Postfix predicates: BETWEEN / IN / REGEXP / LIKE-adjacent.
        let negated = if self.peek_kw("NOT")
            && (self.peek_kw_at(1, "BETWEEN") || self.peek_kw_at(1, "IN"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.parse_primary()?;
            self.expect_kw("AND")?;
            let hi = self.parse_primary()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen, "(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_primary()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, ")")?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if negated {
            return Err(self.err("expected BETWEEN or IN after NOT"));
        }
        if self.eat_kw("REGEXP") || self.eat_kw("MATCH") {
            match self.advance() {
                TokenKind::Str(pat) => {
                    return Ok(Expr::Regexp { expr: Box::new(lhs), pattern: pat })
                }
                _ => return Err(self.err("expected regex pattern string")),
            }
        }

        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::Ne => Some(BinaryOp::Ne),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::Le => Some(BinaryOp::Le),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_primary()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::LBracket => Ok(Expr::Literal(self.parse_array_literal()?)),
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Lit::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Lit::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Lit::Str(s)))
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Lit::Null));
                }
                self.advance();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if matches!(self.peek(), TokenKind::Star) {
                        // `count(*)` — equivalent to the zero-argument form.
                        self.advance();
                    } else if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), TokenKind::Comma) {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, ")")?;
                    Ok(Expr::FuncCall { name, args })
                } else {
                    Ok(Expr::Column(name))
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn parse_literal(&mut self) -> Result<Lit> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Lit::Int(v))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Lit::Float(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Lit::Str(s))
            }
            TokenKind::LBracket => self.parse_array_literal(),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => {
                self.advance();
                Ok(Lit::Null)
            }
            _ => Err(self.err("expected literal")),
        }
    }

    fn parse_array_literal(&mut self) -> Result<Lit> {
        self.expect(&TokenKind::LBracket, "[")?;
        let mut out = Vec::new();
        while !matches!(self.peek(), TokenKind::RBracket) {
            match self.advance() {
                TokenKind::Int(v) => out.push(v as f64),
                TokenKind::Float(v) => out.push(v),
                _ => return Err(self.err("expected number in array literal")),
            }
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
            }
        }
        self.expect(&TokenKind::RBracket, "]")?;
        Ok(Lit::Array(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Statement {
        parse_statement(sql).unwrap()
    }

    #[test]
    fn example1_create_table() {
        let sql = "
            CREATE TABLE images (
              id UInt64,
              label String,
              published_time DateTime,
              embedding Array(Float32),
              INDEX ann_idx embedding TYPE HNSW('DIM=960')
            )
            ORDER BY published_time
            PARTITION BY (toYYYYMMDD(published_time), label)
            CLUSTER BY embedding INTO 512 BUCKETS;
        ";
        let Statement::CreateTable(ct) = parse(sql) else { panic!("not create") };
        assert_eq!(ct.name, "images");
        assert_eq!(ct.columns.len(), 4);
        assert_eq!(ct.columns[3], ("embedding".into(), "Array(Float32)".into()));
        assert_eq!(ct.indexes.len(), 1);
        assert_eq!(ct.indexes[0].index_type, "HNSW");
        assert_eq!(ct.indexes[0].params, vec!["DIM=960".to_string()]);
        assert_eq!(ct.order_by, vec!["published_time".to_string()]);
        assert_eq!(ct.partition_by.len(), 2);
        assert_eq!(ct.partition_by[0].func.as_deref(), Some("toYYYYMMDD"));
        assert_eq!(ct.partition_by[0].column, "published_time");
        assert_eq!(ct.partition_by[1].column, "label");
        assert_eq!(ct.cluster_by, Some(("embedding".into(), 512)));
    }

    #[test]
    fn example1_select() {
        let sql = "
            SELECT id, dist, published_time FROM images
            WHERE label = 'animal'
            AND published_time >= '2024-10-10 10:00:00'
            ORDER BY L2Distance(embedding, [0.1, 0.2]) AS dist
            LIMIT 100;
        ";
        let Statement::Select(sel) = parse(sql) else { panic!("not select") };
        assert_eq!(sel.table, "images");
        assert_eq!(sel.projection.len(), 3);
        assert_eq!(sel.limit, Some(100));
        assert_eq!(sel.order_by.len(), 1);
        assert_eq!(sel.order_by[0].alias.as_deref(), Some("dist"));
        assert!(sel.order_by[0].asc);
        let (fname, args) = sel.order_by[0].expr.as_distance_call().unwrap();
        assert_eq!(fname, "L2Distance");
        assert_eq!(args[0], Expr::col("embedding"));
        assert_eq!(args[1], Expr::lit(Lit::Array(vec![0.1, 0.2])));
        // WHERE is an AND of two comparisons.
        match sel.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::And, lhs, rhs } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinaryOp::Eq, .. }));
                assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::Ge, .. }));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn insert_values_and_csv() {
        let Statement::Insert(ins) =
            parse("INSERT INTO t VALUES (1, 'a', [1.0, 2.0]), (2, 'b', [3, 4])")
        else {
            panic!()
        };
        match ins {
            InsertStmt::Values { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][2], Lit::Array(vec![1.0, 2.0]));
                assert_eq!(rows[1][2], Lit::Array(vec![3.0, 4.0]));
            }
            _ => panic!("expected VALUES"),
        }
        let Statement::Insert(InsertStmt::CsvFile { table, path }) =
            parse("INSERT INTO images CSV INFILE 'img_data.csv';")
        else {
            panic!()
        };
        assert_eq!(table, "images");
        assert_eq!(path, "img_data.csv");
    }

    #[test]
    fn between_in_regexp() {
        let Statement::Select(sel) = parse(
            "SELECT * FROM t WHERE x BETWEEN 1 AND 10 AND label IN ('a','b') \
             AND caption REGEXP '^[0-9]' AND y NOT BETWEEN 5 AND 6",
        ) else {
            panic!()
        };
        let w = sel.where_clause.unwrap();
        // Flatten: ((x BETWEEN …) AND (label IN …)) AND (caption REGEXP …) AND …
        fn count_kinds(e: &Expr, between: &mut usize, inlist: &mut usize, regex: &mut usize) {
            match e {
                Expr::Binary { lhs, rhs, .. } => {
                    count_kinds(lhs, between, inlist, regex);
                    count_kinds(rhs, between, inlist, regex);
                }
                Expr::Between { .. } => *between += 1,
                Expr::InList { .. } => *inlist += 1,
                Expr::Regexp { .. } => *regex += 1,
                _ => {}
            }
        }
        let (mut b, mut i, mut r) = (0, 0, 0);
        count_kinds(&w, &mut b, &mut i, &mut r);
        assert_eq!((b, i, r), (2, 1, 1));
    }

    #[test]
    fn or_binds_looser_than_and() {
        let Statement::Select(sel) = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        else {
            panic!()
        };
        match sel.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_and_parens() {
        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2) AND c != 3")
        else {
            panic!()
        };
        match sel.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::And, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Not(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let Statement::Update(u) = parse("UPDATE t SET score = 0.5, label = 'x' WHERE id = 7")
        else {
            panic!()
        };
        assert_eq!(u.table, "t");
        assert_eq!(u.assignments.len(), 2);
        assert_eq!(u.assignments[0], ("score".into(), Lit::Float(0.5)));
        assert!(u.where_clause.is_some());

        let Statement::Delete(d) = parse("DELETE FROM t") else { panic!() };
        assert_eq!(d.table, "t");
        assert!(d.where_clause.is_none());
    }

    #[test]
    fn distance_range_in_where() {
        let Statement::Select(sel) =
            parse("SELECT id FROM t WHERE L2Distance(emb, [1.0]) < 0.5 LIMIT 5")
        else {
            panic!()
        };
        match sel.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Lt, lhs, .. } => {
                assert!(lhs.as_distance_call().is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn select_star_and_desc() {
        let Statement::Select(sel) = parse("SELECT * FROM t ORDER BY score DESC LIMIT 3") else {
            panic!()
        };
        assert_eq!(sel.projection, vec![SelectItem::Star]);
        assert!(!sel.order_by[0].asc);
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in [
            "SELECT FROM t",
            "CREATE TABLE",
            "INSERT INTO t VALUES",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT 'x'",
            "CREATE TABLE t (a UInt64) CLUSTER BY a INTO 0 BUCKETS",
            "DROP TABLE t",
            "SELECT * FROM t; extra",
        ] {
            let err = parse_statement(bad).unwrap_err();
            assert!(matches!(err, BhError::Parse(_)), "{bad} gave {err:?}");
        }
    }

    #[test]
    fn empty_array_literal() {
        let Statement::Insert(InsertStmt::Values { rows, .. }) =
            parse("INSERT INTO t VALUES ([])")
        else {
            panic!()
        };
        assert_eq!(rows[0][0], Lit::Array(vec![]));
    }

    #[test]
    fn explain_select() {
        let Statement::Explain(sel) = parse("EXPLAIN SELECT id FROM t LIMIT 3") else {
            panic!("not explain")
        };
        assert_eq!(sel.table, "t");
        assert_eq!(sel.limit, Some(3));
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn explain_analyze_select() {
        let Statement::ExplainAnalyze(sel) =
            parse("EXPLAIN ANALYZE SELECT id FROM t ORDER BY id LIMIT 5")
        else {
            panic!("not explain analyze")
        };
        assert_eq!(sel.table, "t");
        assert_eq!(sel.limit, Some(5));
        // Case-insensitive, like every other keyword.
        assert!(matches!(
            parse("explain analyze select id from t"),
            Statement::ExplainAnalyze(_)
        ));
        assert!(parse_statement("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn system_metrics_statement() {
        assert!(matches!(parse("SYSTEM METRICS"), Statement::SystemMetrics));
        assert!(matches!(parse("system metrics;"), Statement::SystemMetrics));
        assert!(parse_statement("SYSTEM").is_err());
        assert!(parse_statement("SYSTEM FLUSH").is_err());
    }

    #[test]
    fn system_trace_export_statement() {
        assert!(matches!(parse("SYSTEM TRACE EXPORT"), Statement::SystemTraceExport));
        assert!(matches!(parse("system trace export;"), Statement::SystemTraceExport));
        assert!(parse_statement("SYSTEM TRACE").is_err());
        assert!(parse_statement("SYSTEM TRACE DUMP").is_err());
    }

    #[test]
    fn qualified_system_table_names_parse() {
        // The lexer treats `system.query_log` as one dotted identifier, so
        // system-table scans ride the ordinary SELECT grammar.
        let Statement::Select(sel) =
            parse("SELECT * FROM system.query_log ORDER BY duration_ns DESC LIMIT 5")
        else {
            panic!()
        };
        assert_eq!(sel.table, "system.query_log");
        assert_eq!(sel.limit, Some(5));
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].asc);
    }

    #[test]
    fn count_star_parses_as_zero_arg_call() {
        let Statement::Select(sel) = parse("SELECT count(*) FROM system.metrics") else {
            panic!()
        };
        let SelectItem::Expr { expr: Expr::FuncCall { name, args }, alias: None } =
            &sel.projection[0]
        else {
            panic!("expected func call, got {:?}", sel.projection[0])
        };
        assert_eq!(name, "count");
        assert!(args.is_empty());
        // Star only folds away as a whole argument list, not mid-list.
        assert!(parse_statement("SELECT count(*, x) FROM t").is_err());
    }

    #[test]
    fn null_literals() {
        let Statement::Insert(InsertStmt::Values { rows, .. }) =
            parse("INSERT INTO t VALUES (NULL, null)")
        else {
            panic!()
        };
        assert_eq!(rows[0], vec![Lit::Null, Lit::Null]);
    }
}
