//! SQL tokenizer.
//!
//! Produces a token stream with byte positions for error messages. Keywords
//! are recognized case-insensitively at parse time (the lexer only emits
//! `Ident`), matching ClickHouse/ByteHouse behaviour where identifiers and
//! keywords share a namespace.

use bh_common::{BhError, Result};

/// One token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset in the source text (for error messages).
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // punctuation/operator variants are self-describing
pub enum TokenKind {
    /// Bare identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string, quotes stripped, `''` unescaped.
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl TokenKind {
    /// Keyword / identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize a statement.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let pos = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, pos });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, pos });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Semicolon, pos });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            '=' => {
                i += 1;
                if i < bytes.len() && bytes[i] == '=' {
                    i += 1;
                }
                out.push(Token { kind: TokenKind::Eq, pos });
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(Token { kind: TokenKind::Ne, pos });
                i += 2;
            }
            '<' => {
                i += 1;
                if i < bytes.len() && bytes[i] == '=' {
                    out.push(Token { kind: TokenKind::Le, pos });
                    i += 1;
                } else if i < bytes.len() && bytes[i] == '>' {
                    out.push(Token { kind: TokenKind::Ne, pos });
                    i += 1;
                } else {
                    out.push(Token { kind: TokenKind::Lt, pos });
                }
            }
            '>' => {
                i += 1;
                if i < bytes.len() && bytes[i] == '=' {
                    out.push(Token { kind: TokenKind::Ge, pos });
                    i += 1;
                } else {
                    out.push(Token { kind: TokenKind::Gt, pos });
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    if bytes[i] == '\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            closed = true;
                            break;
                        }
                    } else {
                        s.push(bytes[i]);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(BhError::Parse(format!("unterminated string at byte {pos}")));
                }
                out.push(Token { kind: TokenKind::Str(s), pos });
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && matches!(bytes[i - 1], 'e' | 'E')))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| BhError::Parse(format!("bad float {text} at {pos}")))?;
                    out.push(Token { kind: TokenKind::Float(v), pos });
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| BhError::Parse(format!("bad integer {text} at {pos}")))?;
                    out.push(Token { kind: TokenKind::Int(v), pos });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Token { kind: TokenKind::Ident(text), pos });
            }
            other => {
                return Err(BhError::Parse(format!("unexpected character '{other}' at byte {pos}")))
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, pos: bytes.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT * FROM t;"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 -3 1e3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Int(-3),
                TokenKind::Float(1000.0),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("[-1.5, 2]")[1], TokenKind::Float(-1.5));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'hello' 'it''s'"),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a >= 1 AND b != 2 OR c <> 3 AND d <= 4"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Int(1),
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Int(2),
                TokenKind::Ident("OR".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Int(3),
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Le,
                TokenKind::Int(4),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- a comment\n 1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn datetime_strings_pass_through() {
        let k = kinds("'2024-10-10 10:00:00'");
        assert_eq!(k[0], TokenKind::Str("2024-10-10 10:00:00".into()));
    }

    #[test]
    fn unexpected_char_errors_with_position() {
        let err = tokenize("a ? b").unwrap_err();
        assert!(err.to_string().contains("'?'"));
        assert!(err.to_string().contains("2"));
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(kinds("db.table")[0], TokenKind::Ident("db.table".into()));
    }
}
