//! **Table IV** — end-to-end load time of BlendHouse vs Milvus vs pgvector.
//!
//! Paper shape: BlendHouse < Milvus < pgvector on both datasets, because
//! BlendHouse pipelines per-segment index builds with segment writes, Milvus
//! builds segment indexes serially after writing, and pgvector builds one
//! monolithic index whose per-insert cost grows with graph size.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, Timer};
use bh_bench::setup::{build_database, load_baseline, TableOptions};
use bh_baselines::{BaselineSystem, MilvusSim, PgvectorSim};
use blendhouse::DatabaseConfig;

fn main() {
    let mut rows = Vec::new();
    for spec in [DatasetSpec::cohere_sim(), DatasetSpec::openai_sim()] {
        let data = spec.generate();

        let t = Timer::start();
        let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
        let bh = t.secs();
        drop(db);

        let t = Timer::start();
        let mut milvus = MilvusSim::with_defaults(data.dim());
        load_baseline(&mut milvus, &data);
        milvus.finalize().unwrap();
        let mv = t.secs();
        drop(milvus);

        let t = Timer::start();
        let mut pg = PgvectorSim::with_defaults(data.dim());
        load_baseline(&mut pg, &data);
        pg.finalize().unwrap();
        let pgv = t.secs();
        drop(pg);

        rows.push(vec![
            spec.name.to_string(),
            format!("{} rows × {}d", spec.n, spec.dim),
            format!("{bh:.2}"),
            format!("{mv:.2}"),
            format!("{pgv:.2}"),
        ]);
        println!(
            "[table4] {}: BlendHouse {bh:.2}s | Milvus {mv:.2}s | pgvector {pgv:.2}s",
            spec.name
        );
        assert!(bh < pgv, "BlendHouse should load faster than pgvector-sim");
    }
    print_table(
        "Table IV: Load time of different systems (seconds)",
        &["dataset", "size", "BlendHouse", "MilvusSim", "PgvectorSim"],
        &rows,
    );
}
