//! Selectivity sweep over the four filtered-search plans: forced Plan A
//! (brute force), B (pre-filter bitmap scan), C (post-filter iterative
//! widening) and D (filter-aware traversal) on a hybrid workload, at pass
//! fractions from 0.001 to 0.99.
//!
//! The table is sized for the regime the cost model routes to Plan D —
//! large top-k over a large-ish table in a few big segments (the paper's
//! production shape is top-1000 over 30M rows; scaled here to top-100 over
//! 60k). Each cell reports QPS and mean recall@k against the exact
//! filtered ground truth. Expected shape: A wins at the extreme low end
//! (few candidates — scanning them exactly is cheapest), C wins at the
//! high end (the filter barely bites, plain ANN + drop is enough), and D
//! owns the mid band where B used to be the only index-accelerated option
//! — the traversal keeps the beam near √(1/s) where B's bitmap scan
//! widens by 1/s. The bench asserts Plan D beats the best of A/B/C at
//! ≥0.9 recall on at least two mid-range pass fractions.
//!
//! Results go to `target/bench-fresh/BENCH_filter.json` in the committed
//! schema so `cargo xtask bench-diff` gates the `_qps` fields (recall
//! fields are recorded but not gated — they are not latencies).

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table, write_fresh_json, Timer};
use bh_bench::setup::{recall_of, result_ids, second_attr};
use bh_bench::workloads::{filtered_search, ground_truth};
use bh_storage::table::TableStoreConfig;
use bh_storage::value::Value;
use blendhouse::{Database, DatabaseConfig, QueryOptions, Strategy};
use std::time::Duration;

const SELECTIVITIES: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.9, 0.99];
/// The band where the cost model routes graph indexes to Plan D.
const MID_RANGE: (f64, f64) = (0.05, 0.5);
const QUERIES: usize = 16;
const K: usize = 200;

const PLANS: [(&str, Strategy); 4] = [
    ("plan_a", Strategy::BruteForce),
    ("plan_b", Strategy::PreFilter),
    ("plan_c", Strategy::PostFilter),
    ("plan_d", Strategy::FilteredTraversal),
];

fn main() {
    let spec = DatasetSpec { name: "filter-sweep", n: 60_000, dim: 64, clusters: 32, seed: 23 };
    let data = spec.generate();
    // Two 30k-row segments: the per-segment beam cost is what Plan D
    // amortizes, so segment count is part of the experiment's regime (a
    // production segment holds far more rows than the unit-test default).
    let db = Database::new(DatabaseConfig {
        table: TableStoreConfig { segment_max_rows: 30_000, ..Default::default() },
        ..Default::default()
    });
    db.execute(&format!(
        "CREATE TABLE bench (
           id UInt64, x Int64, y Int64, caption String, similarity Float64,
           emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')
         ) ORDER BY id",
        data.dim()
    ))
    .expect("create table");
    let t = Timer::start();
    let ys = second_attr(&data);
    let rows: Vec<Vec<Value>> = (0..data.n())
        .map(|i| {
            vec![
                Value::UInt64(i as u64),
                Value::Int64(data.rand_int[i]),
                Value::Int64(ys[i]),
                Value::Str(String::new()),
                Value::Float64(data.similarity[i]),
                Value::Vector(data.vector(i).to_vec()),
            ]
        })
        .collect();
    db.table("bench").expect("created above").insert_rows(rows).expect("ingest");
    println!("[filter_sweep] ingest + index build: {:.1}s", t.secs());

    let mut cases = Vec::new();
    let mut rows = Vec::new();
    let mut mid_wins = 0usize;
    let mut mid_total = 0usize;
    for (si, &s) in SELECTIVITIES.iter().enumerate() {
        let queries = filtered_search(&data, QUERIES, K, s, 0x5EED ^ si as u64);
        let sqls: Vec<String> = queries.iter().map(|q| q.to_sql("bench", "emb")).collect();
        let truths: Vec<_> = queries.iter().map(|q| ground_truth(&data, q, None)).collect();

        let mut qps = [0f64; 4];
        let mut recall = [0f64; 4];
        for (pi, (_, strategy)) in PLANS.iter().enumerate() {
            // The selectivity hint mirrors what the CBO hands the executor
            // from the column sketch; here we pass the true pass fraction so
            // every plan's adaptive knobs see the same (accurate) estimate.
            let opts = QueryOptions {
                forced_strategy: Some(*strategy),
                search: bh_vector::SearchParams::default()
                    .with_ef(128)
                    .with_selectivity(s as f32),
                ..db.default_options()
            };
            // Recall pass doubles as warm-up for the timed pass.
            let mut total = 0.0;
            for (sql, truth) in sqls.iter().zip(&truths) {
                let rs = db.execute_with(sql, &opts).expect("query").rows();
                total += recall_of(&result_ids(&rs), truth);
            }
            recall[pi] = total / sqls.len() as f64;
            let mut qi = 0;
            qps[pi] = measure_qps(24, Duration::from_millis(400), || {
                std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], &opts).expect("query"));
                qi += 1;
            });
        }

        let best_abc = qps[0].max(qps[1]).max(qps[2]);
        if s >= MID_RANGE.0 && s <= MID_RANGE.1 {
            mid_total += 1;
            if qps[3] > best_abc && recall[3] >= 0.9 {
                mid_wins += 1;
            }
        }

        rows.push(vec![
            format!("{s}"),
            format!("{:.0} ({:.2})", qps[0], recall[0]),
            format!("{:.0} ({:.2})", qps[1], recall[1]),
            format!("{:.0} ({:.2})", qps[2], recall[2]),
            format!("{:.0} ({:.2})", qps[3], recall[3]),
            format!("{:.2}x", qps[3] / best_abc),
        ]);
        cases.push(format!(
            "    {{ \"case\": \"s={s}\", \"selectivity\": {s}, \
             \"plan_a_qps\": {:.0}, \"plan_a_recall\": {:.3}, \
             \"plan_b_qps\": {:.0}, \"plan_b_recall\": {:.3}, \
             \"plan_c_qps\": {:.0}, \"plan_c_recall\": {:.3}, \
             \"plan_d_qps\": {:.0}, \"plan_d_recall\": {:.3} }}",
            qps[0], recall[0], qps[1], recall[1], qps[2], recall[2], qps[3], recall[3],
        ));
    }

    print_table(
        &format!(
            "filter sweep (n={}, dim={}, k={K}, 2 segments): QPS (recall@{K}) by plan",
            data.n(),
            data.dim()
        ),
        &["pass fraction", "A brute", "B pre-filter", "C post-filter", "D traversal", "D/best(ABC)"],
        &rows,
    );
    println!(
        "[filter_sweep] Plan D beats best of A/B/C at recall>=0.9 on {mid_wins}/{mid_total} \
         mid-range pass fractions"
    );
    assert!(
        mid_wins >= 2,
        "Plan D should win at >=0.9 recall on at least two mid-range pass fractions, got {mid_wins}"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"filtered-search selectivity sweep: QPS and recall@{K} for forced Plans A (brute force), B (pre-filter bitmap), C (post-filter widening), D (filter-aware traversal)\",\n  \
         \"method\": \"crates/bench/benches/filter_sweep.rs: {} rows, dim {}, 2 segments, {QUERIES} random-int range queries per pass fraction, true pass fraction passed as the selectivity hint, ef_search 128; recall vs exact filtered ground truth; QPS = round-robin measure_qps over the query set.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        data.n(),
        data.dim(),
        cases.join(",\n"),
    );
    write_fresh_json("BENCH_filter.json", &json);
}
