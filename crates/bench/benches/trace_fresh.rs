//! Fresh-emitter counterpart of the committed `BENCH_trace.json`: the cost
//! of `Tracer::span` open/attr/drop around a per-block-sized unit of work,
//! with tracing disabled (the production default) and enabled, written to
//! `target/bench-fresh/BENCH_trace.json` in the committed schema so
//! `cargo xtask bench-diff` covers it.
//!
//! The workload models the finest-grained span site in the query path — a
//! per-block cache probe (~300ns of work: a 512-dim f32 L2 accumulation).
//! Baseline and disabled-span loops are interleaved within each run and the
//! per-loop minimum is kept, the least-perturbed observation on a shared
//! box; `overhead_pct = (disabled - baseline) / baseline`.

use bh_bench::harness::{print_table, write_fresh_json, Timer};
use bh_common::MetricsRegistry;
use std::hint::black_box;

const OPS: usize = 200_000;
const INTERLEAVES: usize = 7;
const RUNS: usize = 5;
const WORK_DIM: usize = 512;

/// The ~300ns unit of work a per-block span would wrap.
#[inline(never)]
fn work(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..WORK_DIM {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

struct Run {
    baseline_ns: f64,
    disabled_ns: f64,
    disabled_only_ns: f64,
    enabled_ns: f64,
}

fn one_run(metrics: &MetricsRegistry, a: &[f32], b: &[f32]) -> Run {
    let tracer = metrics.tracer();
    tracer.set_enabled(false);
    let (mut base_min, mut dis_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..INTERLEAVES {
        let t = Timer::start();
        let mut acc = 0.0f32;
        for _ in 0..OPS {
            acc += work(a, b);
        }
        black_box(acc);
        base_min = base_min.min(t.secs() * 1e9 / OPS as f64);

        let t = Timer::start();
        let mut acc = 0.0f32;
        for i in 0..OPS {
            let mut span = tracer.span("block.read");
            span.attr("bytes", i as u64);
            acc += work(a, b);
            black_box(&span);
        }
        black_box(acc);
        dis_min = dis_min.min(t.secs() * 1e9 / OPS as f64);
    }

    // Isolated disabled-span cost: guard open/attr/drop with no work inside.
    let mut only_min = f64::INFINITY;
    for _ in 0..INTERLEAVES {
        let t = Timer::start();
        for i in 0..OPS {
            let mut span = tracer.span("block.read");
            span.attr("bytes", i as u64);
            black_box(&span);
        }
        only_min = only_min.min(t.secs() * 1e9 / OPS as f64);
    }

    tracer.set_enabled(true);
    let t = Timer::start();
    let mut acc = 0.0f32;
    for i in 0..OPS {
        let mut span = tracer.span("block.read");
        span.attr("bytes", i as u64);
        acc += work(a, b);
        black_box(&span);
    }
    black_box(acc);
    let enabled_ns = t.secs() * 1e9 / OPS as f64;
    tracer.set_enabled(false);
    tracer.clear();

    Run { baseline_ns: base_min, disabled_ns: dis_min, disabled_only_ns: only_min, enabled_ns }
}

fn main() {
    let a: Vec<f32> = (0..WORK_DIM).map(|i| (i as f32 * 0.61803).sin()).collect();
    let b: Vec<f32> = (0..WORK_DIM).map(|i| (i as f32 * 0.31415).cos()).collect();
    let metrics = MetricsRegistry::new();

    let mut rows = Vec::new();
    let mut cases = Vec::new();
    for run in 1..=RUNS {
        let r = one_run(&metrics, &a, &b);
        let overhead_pct = (r.disabled_ns - r.baseline_ns) / r.baseline_ns * 100.0;
        rows.push(vec![
            format!("{run}"),
            format!("{:.1}", r.baseline_ns),
            format!("{:.1}", r.disabled_ns),
            format!("{overhead_pct:.2}"),
            format!("{:.1}", r.disabled_only_ns),
            format!("{:.1}", r.enabled_ns),
        ]);
        cases.push(format!(
            "    {{ \"run\": {run}, \"baseline_ns_per_op\": {:.1}, \
             \"disabled_span_ns_per_op\": {:.1}, \"overhead_pct\": {overhead_pct:.2}, \
             \"disabled_span_only_ns_per_op\": {:.1}, \"enabled_span_ns_per_op\": {:.1} }}",
            r.baseline_ns, r.disabled_ns, r.disabled_only_ns, r.enabled_ns
        ));
    }
    print_table(
        "tracing overhead around a ~300ns op (ns/op)",
        &["run", "baseline", "disabled span", "overhead %", "span only", "enabled span"],
        &rows,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"tracing overhead: Tracer::span open/attr/drop cost with tracing disabled (production default) and enabled\",\n  \
         \"method\": \"crates/bench/benches/trace_fresh.rs: {OPS} ops per loop, baseline/disabled interleaved {INTERLEAVES}x per run with per-loop min kept; work = {WORK_DIM}-dim f32 L2 accumulation; {RUNS} runs reported.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        cases.join(",\n"),
    );
    write_fresh_json("BENCH_trace.json", &json);
}
