//! **Fig. 13** — recall-vs-QPS trade-off of the three recommended index
//! types (BH-HNSW, BH-HNSWSQ, BH-IVFPQFS), sweeping ef_search / nprobe.
//!
//! Paper shape: HNSW reaches the highest recall ceiling, HNSWSQ tracks it at
//! lower memory with a small recall tax, IVFPQFS trades recall for the
//! fastest/cheapest operation.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{recall_of, result_ids, build_database, TableOptions};
use bh_bench::workloads::{ground_truth, vector_search};
use bh_vector::SearchParams;
use blendhouse::DatabaseConfig;
use std::time::Duration;

const K: usize = 10;

fn main() {
    let data = DatasetSpec::cohere_sim().generate();
    let queries = vector_search(&data, 24, K, 5);
    let truths: Vec<_> = queries.iter().map(|q| ground_truth(&data, q, None)).collect();

    let mut rows = Vec::new();
    let mut best_recall = std::collections::BTreeMap::new();
    for (label, clause) in [
        ("BH-HNSW", format!("HNSW('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')", data.dim())),
        ("BH-HNSWSQ", format!("HNSWSQ('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')", data.dim())),
        ("BH-IVFPQFS", format!("IVFPQFS('DIM={}')", data.dim())),
    ] {
        let db = build_database(
            &data,
            DatabaseConfig::default(),
            &TableOptions { index_clause: Some(clause), ..Default::default() },
        );
        for knob in [8usize, 16, 32, 64, 128] {
            let params = SearchParams::default().with_ef(knob).with_nprobe(knob / 2 + 1);
            let opts = blendhouse::QueryOptions { search: params, ..db.default_options() };
            let sqls: Vec<String> = queries.iter().map(|q| q.to_sql("bench", "emb")).collect();
            let mut qi = 0;
            let qps = measure_qps(24, Duration::from_millis(300), || {
                std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], &opts).unwrap());
                qi += 1;
            });
            let recall: f64 = queries
                .iter()
                .zip(&truths)
                .map(|(q, t)| {
                    let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
                    recall_of(&result_ids(&rs), t)
                })
                .sum::<f64>()
                / queries.len() as f64;
            println!("[fig13] {label} knob={knob}: recall {recall:.3} qps {qps:.0}");
            let entry = best_recall.entry(label.to_string()).or_insert(0.0f64);
            *entry = entry.max(recall);
            rows.push(vec![
                label.to_string(),
                format!("{knob}"),
                format!("{recall:.3}"),
                format!("{qps:.0}"),
            ]);
        }
    }
    assert!(
        best_recall["BH-HNSW"] >= best_recall["BH-IVFPQFS"],
        "HNSW's recall ceiling must be at or above IVFPQFS'"
    );
    print_table(
        "Fig 13: recall vs QPS of different index types",
        &["index", "ef/nprobe knob", "recall@10", "QPS"],
        &rows,
    );
}
