//! Cold multi-segment batch scan: overlapped async segment I/O + tiered
//! partial loading vs the blocking cold path (DESIGN.md §11).
//!
//! Both configurations run the same batch of queries against an identical
//! freshly-built table whose every index is cold. The *blocking* fixture
//! uses a plain simulated object store: each remote `store.get` charges its
//! full transfer latency synchronously, so cold fetches serialize. The
//! *overlapped* fixture routes the store through a `bh_common::cq::Reactor`
//! and enables `WorkerConfig { overlap, tiered_loading }`: the executor
//! prefetches every scheduled segment's index blob at the start of the
//! round, first results are served from head-only indexes, and concurrent
//! transfer deadlines collapse to their max on the shared virtual clock.
//!
//! All times are *simulated* nanoseconds read off the `VirtualClock`, so the
//! emitted `BENCH_io.json` is deterministic across machines and `cargo xtask
//! bench-diff` can hold it to a tight threshold.
//!
//! Acceptance (ISSUE 7): on the overlapped run, wall-clock simulated time is
//! at least 2x smaller than the sum of per-span `store.get` `sim_nanos` —
//! i.e. the transfer time is demonstrably hidden, not merely reordered.

use bh_bench::harness::{print_table, write_fresh_json};
use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_cluster::worker::WorkerConfig;
use bh_common::ids::IdGenerator;
use bh_common::trace::AttrValue;
use bh_common::{
    LatencyModel, MetricsRegistry, Reactor, SharedClock, VirtualClock, VwId,
};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_sql::ast::SelectStmt;
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 32;
const SEGMENTS: usize = 12;
const ROWS_PER_SEGMENT: usize = 300;
const BATCH: usize = 8;
const K: usize = 10;

struct Fixture {
    table: Arc<TableStore>,
    vw: VirtualWarehouse,
    engine: QueryEngine,
    clock: SharedClock,
    metrics: MetricsRegistry,
}

/// A fresh cold table + warehouse. `overlapped` selects the reactor-backed
/// store and the overlap/tiered worker knobs; everything else (data, layout,
/// latency model, topology) is identical between the two configurations.
fn fixture(overlapped: bool) -> Fixture {
    let clock: SharedClock = VirtualClock::shared();
    let metrics = MetricsRegistry::new();
    // A remote object store: 100µs per request plus 10ns per byte.
    let model = LatencyModel::new(Duration::from_micros(100), Duration::from_nanos(10));
    let base = InMemoryObjectStore::new(clock.clone(), model, metrics.clone(), "remote");
    let store = Arc::new(if overlapped {
        base.with_reactor(Arc::new(Reactor::new(clock.clone())))
    } else {
        base
    });
    let schema = TableSchema::new("t")
        .with_column("id", ColumnType::UInt64)
        .with_column("emb", ColumnType::Vector(DIM))
        .with_vector_index("ann", "emb", IndexKind::Hnsw, DIM, Metric::L2);
    let table = TableStore::new(
        schema,
        store,
        Arc::new(IndexRegistry::with_builtins()),
        TableStoreConfig { segment_max_rows: ROWS_PER_SEGMENT, ..Default::default() },
        Arc::new(IdGenerator::new()),
        metrics.clone(),
    )
    .unwrap();
    let n = SEGMENTS * ROWS_PER_SEGMENT;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let c = (i % 8) as f32 * 4.0;
            let v: Vec<f32> =
                (0..DIM).map(|d| c + ((i * DIM + d) as f32 * 0.37).sin() * 0.5).collect();
            vec![Value::UInt64(i as u64), Value::Vector(v)]
        })
        .collect();
    table.insert_rows(rows).unwrap();
    let vw = VirtualWarehouse::new(
        VwId(0),
        if overlapped { "overlapped" } else { "blocking" },
        VwConfig {
            worker: WorkerConfig {
                overlap: overlapped,
                tiered_loading: overlapped,
                ..Default::default()
            },
            ..Default::default()
        },
        table.remote_store().clone(),
        table.registry().clone(),
        clock.clone(),
        metrics.clone(),
        Arc::new(IdGenerator::starting_at(10_000)),
    );
    vw.scale_up(&[]);
    vw.scale_up(&[]);
    let engine = QueryEngine::new(metrics.clone());
    Fixture { table: Arc::new(table), vw, engine, clock, metrics }
}

fn batch_stmts() -> Vec<SelectStmt> {
    (0..BATCH)
        .map(|qi| {
            let c = (qi % 8) as f32 * 4.0;
            let coords: Vec<String> =
                (0..DIM).map(|d| format!("{:.4}", c + (d as f32 * 0.21).cos() * 0.3)).collect();
            let sql = format!(
                "SELECT id, dist FROM t ORDER BY L2Distance(emb, [{}]) AS dist LIMIT {K}",
                coords.join(", ")
            );
            match bh_sql::parse_statement(&sql).unwrap() {
                bh_sql::Statement::Select(sel) => sel,
                other => panic!("expected SELECT, got {other:?}"),
            }
        })
        .collect()
}

struct RunResult {
    wall_sim_ns: u64,
    store_get_sum_sim_ns: u64,
    store_get_spans: usize,
    rows: Vec<Vec<bh_storage::value::Value>>,
}

/// Run the cold batch once, measuring simulated wall time against the sum of
/// every `store.get` span's `sim_nanos` attribute (the per-transfer cost the
/// store would charge if nothing overlapped).
fn run_cold_batch(fix: &Fixture, stmts: &[SelectStmt]) -> RunResult {
    let tracer = fix.metrics.tracer();
    tracer.set_enabled(true);
    tracer.clear();
    let start = fix.clock.now_nanos();
    let results = fix
        .engine
        .execute_select_batch(&fix.table, &fix.vw, &QueryOptions::default(), stmts)
        .unwrap();
    let wall_sim_ns = fix.clock.now_nanos() - start;
    tracer.set_enabled(false);
    let mut sum = 0u64;
    let mut spans = 0usize;
    for rec in tracer.drain() {
        if rec.name != "store.get" {
            continue;
        }
        if let Some(AttrValue::U64(ns)) = rec.attr("sim_nanos") {
            sum += ns;
            spans += 1;
        }
    }
    RunResult {
        wall_sim_ns,
        store_get_sum_sim_ns: sum,
        store_get_spans: spans,
        rows: results.into_iter().flat_map(|r| r.rows).collect(),
    }
}

fn main() {
    let stmts = batch_stmts();

    let blocking_fix = fixture(false);
    let blocking = run_cold_batch(&blocking_fix, &stmts);

    let overlapped_fix = fixture(true);
    let overlapped = run_cold_batch(&overlapped_fix, &stmts);

    // Overlap must hide transfer time, not reorder result bytes: the warm
    // steady state of both warehouses agrees, and is checked bit-exactly by
    // crates/query/tests/overlap_equivalence.rs; here we sanity-check the
    // cold first batch returned the same number of merged rows.
    assert_eq!(blocking.rows.len(), overlapped.rows.len(), "cold result shape diverged");

    let ratio = |r: &RunResult| r.store_get_sum_sim_ns as f64 / r.wall_sim_ns.max(1) as f64;
    let speedup = blocking.wall_sim_ns as f64 / overlapped.wall_sim_ns.max(1) as f64;
    print_table(
        &format!(
            "cold {SEGMENTS}-segment batch-{BATCH} scan, simulated time (store: 100µs + 10ns/B)"
        ),
        &["config", "wall sim ms", "Σ store.get sim ms", "overlap ratio"],
        &[
            vec![
                "blocking".into(),
                format!("{:.3}", blocking.wall_sim_ns as f64 / 1e6),
                format!("{:.3}", blocking.store_get_sum_sim_ns as f64 / 1e6),
                format!("{:.2}x", ratio(&blocking)),
            ],
            vec![
                "overlapped+tiered".into(),
                format!("{:.3}", overlapped.wall_sim_ns as f64 / 1e6),
                format!("{:.3}", overlapped.store_get_sum_sim_ns as f64 / 1e6),
                format!("{:.2}x", ratio(&overlapped)),
            ],
        ],
    );
    println!(
        "[cold_scan] overlapped wall is {speedup:.2}x faster than blocking; \
         {} store.get spans blocking, {} overlapped",
        blocking.store_get_spans, overlapped.store_get_spans
    );

    // ISSUE 7 acceptance: transfers demonstrably overlap on the cold batch.
    assert!(
        ratio(&overlapped) >= 2.0,
        "overlap ratio {:.2} below the 2x acceptance bar (wall {} ns vs Σ store.get {} ns)",
        ratio(&overlapped),
        overlapped.wall_sim_ns,
        overlapped.store_get_sum_sim_ns
    );

    let json = format!(
        "{{\n  \"benchmark\": \"cold multi-segment batch: overlapped async I/O + tiered loading vs blocking cold path\",\n  \
         \"method\": \"Simulated time on a VirtualClock; remote store charges 100us + 10ns/byte per get. {SEGMENTS} cold HNSW segments x {ROWS_PER_SEGMENT} rows (dim {DIM}), batch of {BATCH} top-{K} queries via execute_select_batch. Blocking = synchronous charges, brute-force cold fallback. Overlapped = reactor-backed store + executor prefetch of every scheduled segment + head-only (tiered v3) first serving. wall_sim_ns is the clock delta across the batch; store_get_sum_sim_ns sums every store.get span's sim_nanos attr. Deterministic: identical on every machine.\",\n  \
         \"acceptance\": \"overlapped store_get_sum_sim_ns / wall_sim_ns >= 2 — met ({:.2}x)\",\n  \
         \"results\": [\n    \
         {{ \"case\": \"blocking\", \"wall_sim_ns\": {}, \"store_get_sum_sim_ns\": {}, \"store_get_spans\": {}, \"overlap_ratio\": {:.3} }},\n    \
         {{ \"case\": \"overlapped\", \"wall_sim_ns\": {}, \"store_get_sum_sim_ns\": {}, \"store_get_spans\": {}, \"overlap_ratio\": {:.3} }}\n  ],\n  \
         \"speedup_blocking_over_overlapped\": {:.3}\n}}\n",
        ratio(&overlapped),
        blocking.wall_sim_ns,
        blocking.store_get_sum_sim_ns,
        blocking.store_get_spans,
        ratio(&blocking),
        overlapped.wall_sim_ns,
        overlapped.store_get_sum_sim_ns,
        overlapped.store_get_spans,
        ratio(&overlapped),
        speedup,
    );
    write_fresh_json("BENCH_io.json", &json);
}
