//! **Fig. 16** — data partition strategies on the LAION-style workload
//! (§V-B7): random vs scalar (similarity-score partitions) vs semantic
//! (k-means CLUSTER BY) vs the combination.
//!
//! Paper shape: scalar and semantic each beat random partitioning; their
//! combination is best, because the scheduler can prune on both axes.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::laion_search;
use bh_cluster::scheduler::PruneConfig;
use blendhouse::{DatabaseConfig, QueryOptions};
use std::time::Duration;

fn main() {
    let data = DatasetSpec::laion_sim().generate().with_captions();
    let queries = laion_search(&data, 24, 10, 6);

    let configs: Vec<(&str, TableOptions, PruneConfig)> = vec![
        (
            "random",
            TableOptions::default(),
            PruneConfig::none(),
        ),
        (
            "scalar",
            TableOptions {
                with_pbucket: true,
                partition_clause: "PARTITION BY pbucket".into(),
                ..Default::default()
            },
            PruneConfig::scalar_only(),
        ),
        (
            "semantic",
            TableOptions {
                cluster_clause: "CLUSTER BY emb INTO 16 BUCKETS".into(),
                ..Default::default()
            },
            PruneConfig { scalar: false, semantic_fraction: 0.3, min_segments: 2 },
        ),
        (
            "scalar+semantic",
            TableOptions {
                with_pbucket: true,
                partition_clause: "PARTITION BY pbucket".into(),
                cluster_clause: "CLUSTER BY emb INTO 16 BUCKETS".into(),
                ..Default::default()
            },
            PruneConfig { scalar: true, semantic_fraction: 0.3, min_segments: 2 },
        ),
    ];

    let mut rows = Vec::new();
    let mut results = std::collections::BTreeMap::new();
    for (label, topts, prune) in configs {
        // Equal segment sizes across configurations: partitioning decides
        // *which* rows share a segment, not how large segments are.
        let mut cfg = DatabaseConfig::default();
        cfg.table.segment_max_rows = 128;
        let db = build_database(&data, cfg, &topts);
        let opts = QueryOptions { prune, ..db.default_options() };
        let mut sqls: Vec<String> = Vec::new();
        for q in &queries {
            // The scalar-partition variants additionally filter the pbucket
            // column, which is what lets partition pruning engage fully.
            let mut sql = q.to_sql("bench", "emb");
            if topts.with_pbucket {
                let bucket = (q.similarity_floor.unwrap_or(0.0) * 10.0) as i64;
                sql = sql.replace(
                    "WHERE ",
                    &format!("WHERE pbucket BETWEEN {bucket} AND 10 AND "),
                );
            }
            sqls.push(sql);
        }
        let mut qi = 0;
        let qps = measure_qps(24, Duration::from_millis(800), || {
            std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], &opts).unwrap());
            qi += 1;
        });
        println!("[fig16] {label}: {qps:.0} qps");
        results.insert(label.to_string(), qps);
        rows.push(vec![label.to_string(), format!("{qps:.0}")]);
    }
    assert!(
        results["scalar+semantic"] > results["random"],
        "combined partitioning must beat random ({:.0} vs {:.0})",
        results["scalar+semantic"],
        results["random"]
    );
    print_table(
        "Fig 16: QPS of different partition strategies (LAION-style workload)",
        &["strategy", "QPS"],
        &rows,
    );
}
