//! **Fig. 11** — query latency under a vector-index cache miss: local search
//! (index resident) vs vector search serving (RPC to the previous owner) vs
//! brute-force fallback (§II-D, §V-B2).
//!
//! Paper shape: brute force is an order of magnitude (14.5x there) slower
//! than local; serving adds only a small RPC overhead (+16.6% there),
//! eliminating the fluctuation.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{fmt_duration, measure_latency, print_table};
use bh_cluster::worker::{Worker, WorkerConfig};
use bh_common::ids::IdGenerator;
use bh_common::{LatencyModel, MetricsRegistry, RealClock, WorkerId};
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric, SearchParams};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let data = DatasetSpec::cohere_sim().generate();
    let clock = RealClock::shared();
    let metrics = MetricsRegistry::new();
    // Remote store with realistic (scaled) latency: 2ms + ~1GB/s.
    let remote = Arc::new(InMemoryObjectStore::new(
        clock.clone(),
        LatencyModel::new(Duration::from_micros(2_000), Duration::from_nanos(1)),
        metrics.clone(),
        "remote",
    ));
    let schema = TableSchema::new("t")
        .with_column("id", ColumnType::UInt64)
        .with_column("emb", ColumnType::Vector(data.dim()))
        .with_vector_index("ann", "emb", IndexKind::Hnsw, data.dim(), Metric::L2);
    let table = TableStore::new(
        schema,
        remote.clone(),
        Arc::new(IndexRegistry::with_builtins()),
        TableStoreConfig { segment_max_rows: data.n(), ..Default::default() },
        Arc::new(IdGenerator::new()),
        metrics.clone(),
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..data.n())
        .map(|i| vec![Value::UInt64(i as u64), Value::Vector(data.vector(i).to_vec())])
        .collect();
    table.insert_rows(rows).unwrap();
    let meta = table.segments()[0].clone();

    let mk_worker = |id: u64, data_cache: usize| {
        Worker::new(
            WorkerId(id),
            WorkerConfig { block_data_bytes: data_cache, ..Default::default() },
            remote.clone(),
            None,
            table.registry().clone(),
            clock.clone(),
            metrics.clone(),
        )
    };
    // Worker A: warm (the pre-scaling owner). Worker B: cold newcomer with a
    // tiny block cache (its data is genuinely not local).
    let warm = mk_worker(1, 128 << 20);
    warm.warm_index(&meta).unwrap();
    // The standardized `cache.*` counter names are part of the observability
    // contract; fail fast if an instrumentation rename drifts.
    assert!(
        metrics.counter_value("cache.index.remote.fetch") >= 1,
        "warming must record a cache.index.remote.fetch"
    );
    let cold = mk_worker(2, 0);

    let q = data.queries(8, 0);
    let params = SearchParams::default().with_ef(64);
    let rpc = LatencyModel::fixed(Duration::from_micros(50));

    let mut qi = 0;
    let local = measure_latency(64, || {
        std::hint::black_box(
            warm.search_segment(&table, &meta, &q[qi % q.len()], 10, &params, None).unwrap(),
        );
        qi += 1;
    });

    let mut qi = 0;
    let serving = measure_latency(64, || {
        // The newcomer charges the RPC and the previous owner answers.
        cold.charge_rpc(&rpc, data.dim() * 4);
        std::hint::black_box(
            warm.serve_remote_search(&meta, &q[qi % q.len()], 10, &params, None).unwrap(),
        );
        qi += 1;
    });

    let mut qi = 0;
    let brute = measure_latency(8, || {
        std::hint::black_box(
            cold.brute_force_segment(&table, &meta, &q[qi % q.len()], 10, None).unwrap(),
        );
        qi += 1;
    });

    let rows = vec![
        vec!["local search".into(), fmt_duration(local), "1.00x".into()],
        vec![
            "vector search serving".into(),
            fmt_duration(serving),
            format!("{:.2}x", serving.as_secs_f64() / local.as_secs_f64()),
        ],
        vec![
            "brute force (cache miss)".into(),
            fmt_duration(brute),
            format!("{:.2}x", brute.as_secs_f64() / local.as_secs_f64()),
        ],
    ];
    println!(
        "[fig11] local {} | serving {} | brute {}",
        fmt_duration(local),
        fmt_duration(serving),
        fmt_duration(brute)
    );
    assert!(serving < brute, "serving must beat the brute-force fallback");
    assert!(local < serving, "serving pays an RPC overhead over local");
    assert!(
        metrics.counter_value("cache.index.mem.hit") > 0,
        "local searches must record cache.index.mem.hit"
    );
    print_table(
        "Fig 11: latency of local search, vector search serving, brute force",
        &["mode", "mean latency", "vs local"],
        &rows,
    );
}
