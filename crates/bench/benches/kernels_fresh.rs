//! Fresh-emitter counterpart of the committed `BENCH_kernels.json`:
//! runtime-dispatched SIMD distance kernels vs the scalar reference, timed
//! on *this* machine and written to `target/bench-fresh/BENCH_kernels.json`
//! in the committed schema (same case order), so `cargo xtask bench-diff`
//! can gate kernel latency regressions.
//!
//! Parity against the scalar oracle is asserted before timing — a fast
//! wrong kernel must fail here, not in the diff.

use bh_bench::harness::{print_table, write_fresh_json, Timer};
use bh_vector::distance::{self, scalar, KernelTier, Metric};
use std::hint::black_box;

const DIMS: [usize; 4] = [64, 128, 768, 1536];
const KERNELS: [&str; 3] = ["l2_sq", "dot", "cosine"];
/// Pairs per timing rep; the median of `REPS` reps is reported.
const PAIRS: usize = 64;
const ITERS: usize = 2_000;
const REPS: usize = 7;

fn gen_vectors(dim: usize, n: usize, seed: u32) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * dim + d) as f32 + seed as f32) * 0.61803).sin())
                .collect()
        })
        .collect()
}

fn run_kernel(kernel: &str, a: &[f32], b: &[f32], dispatched: bool) -> f32 {
    match (kernel, dispatched) {
        ("l2_sq", true) => distance::l2_sq(a, b),
        ("l2_sq", false) => scalar::l2_sq(a, b),
        ("dot", true) => distance::dot(a, b),
        ("dot", false) => scalar::dot(a, b),
        ("cosine", true) => distance::cosine_distance(a, b),
        ("cosine", false) => scalar::cosine_distance(a, b),
        _ => unreachable!("unknown kernel {kernel}"),
    }
}

/// Median ns per call over `REPS` reps of `ITERS * PAIRS` calls.
fn time_pairs(kernel: &str, vecs: &[Vec<f32>], dispatched: bool) -> f64 {
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Timer::start();
        let mut acc = 0.0f32;
        for _ in 0..ITERS {
            for i in 0..PAIRS {
                let (a, b) = (&vecs[i], &vecs[(i + 1) % PAIRS]);
                acc += run_kernel(kernel, a, b, dispatched);
            }
        }
        black_box(acc);
        samples.push(t.secs() * 1e9 / (ITERS * PAIRS) as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median ns per row of a full-block `distance_batch(L2)` vs a scalar loop.
fn time_batched(dim: usize) -> (f64, f64) {
    let rows = 4096;
    let block: Vec<f32> = gen_vectors(dim, rows, 7).into_iter().flatten().collect();
    let q: Vec<f32> = gen_vectors(dim, 1, 11).remove(0);
    let mut out = vec![0.0f32; rows];
    let (mut scalar_s, mut fast_s) = (Vec::new(), Vec::new());
    for _ in 0..REPS {
        let t = Timer::start();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = scalar::l2_sq(&q, &block[i * dim..(i + 1) * dim]);
        }
        black_box(&out);
        scalar_s.push(t.secs() * 1e9 / rows as f64);

        let t = Timer::start();
        distance::distance_batch(Metric::L2, &q, &block, dim, &mut out).unwrap();
        black_box(&out);
        fast_s.push(t.secs() * 1e9 / rows as f64);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (med(&mut scalar_s), med(&mut fast_s))
}

fn main() {
    // Parity first: dispatched kernels must agree with the scalar oracle.
    for dim in [1usize, 7, 64, 300] {
        let vecs = gen_vectors(dim, 8, 3);
        for pair in vecs.windows(2) {
            for kernel in KERNELS {
                let s = run_kernel(kernel, &pair[0], &pair[1], false);
                let d = run_kernel(kernel, &pair[0], &pair[1], true);
                let err = (s - d).abs() / s.abs().max(1e-6);
                assert!(err < 1e-4, "{kernel} dim {dim}: scalar {s} vs dispatched {d}");
            }
        }
    }

    let mut rows = Vec::new();
    let mut cases = Vec::new();
    for dim in DIMS {
        let vecs = gen_vectors(dim, PAIRS, 1);
        for kernel in KERNELS {
            let s = time_pairs(kernel, &vecs, false);
            let d = time_pairs(kernel, &vecs, true);
            rows.push(vec![
                format!("{dim}"),
                kernel.to_string(),
                format!("{s:.1}"),
                format!("{d:.1}"),
                format!("{:.2}", s / d),
            ]);
            cases.push(format!(
                "    {{ \"dim\": {dim}, \"kernel\": \"{kernel}\", \"scalar_ns\": {s:.1}, \
                 \"dispatched_ns\": {d:.1}, \"speedup\": {:.2} }}",
                s / d
            ));
        }
    }
    print_table(
        "runtime-dispatched SIMD kernels vs scalar reference (ns/call)",
        &["dim", "kernel", "scalar", "dispatched", "speedup"],
        &rows,
    );

    let mut brows = Vec::new();
    let mut bcases = Vec::new();
    for dim in [128usize, 768] {
        let (s, d) = time_batched(dim);
        brows.push(vec![
            format!("{dim}"),
            format!("{s:.1}"),
            format!("{d:.1}"),
            format!("{:.2}", s / d),
        ]);
        bcases.push(format!(
            "    {{ \"dim\": {dim}, \"kernel\": \"distance_batch(L2)\", \
             \"scalar_ns_per_row\": {s:.1}, \"dispatched_ns_per_row\": {d:.1}, \
             \"speedup\": {:.2} }}",
            s / d
        ));
    }
    print_table(
        "batched L2 scan (ns/row)",
        &["dim", "scalar", "dispatched", "speedup"],
        &brows,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"runtime-dispatched SIMD distance kernels vs scalar reference\",\n  \
         \"machine\": {{ \"arch\": \"{}\", \"kernel_tier_detected\": \"{}\" }},\n  \
         \"method\": \"crates/bench/benches/kernels_fresh.rs: median ns/call over {REPS} reps of {} warm calls per dim/kernel; parity vs the scalar oracle asserted before timing.\",\n  \
         \"single_pair_ns\": [\n{}\n  ],\n  \
         \"batched_scan_ns_per_row\": [\n{}\n  ]\n}}\n",
        std::env::consts::ARCH,
        KernelTier::current().name(),
        ITERS * PAIRS,
        cases.join(",\n"),
        bcases.join(",\n"),
    );
    write_fresh_json("BENCH_kernels.json", &json);
}
