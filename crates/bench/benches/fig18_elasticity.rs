//! **Fig. 18** — immediate QPS response to VW scaling (§V-C2).
//!
//! The VW scales 1 → 2 → 4 → 8 workers under a steady vector workload.
//! Capacity is modelled explicitly: each worker's per-segment search charges
//! a fixed service time on the wall clock (the host running this bench may
//! have a single core, so throughput must come from overlapping *charged*
//! time, exactly like a real cluster's parallel workers), and client
//! admission is capped by a slot pool sized to the worker count. With
//! vector search serving, newly added workers answer immediately via the
//! previous owners' caches, so QPS tracks capacity; with serving disabled,
//! each scale step pays a window of brute-force fallbacks (the dip the
//! paper contrasts against Manu's load-and-wait behaviour).

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, CpuPool};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use bh_common::{DeploymentLatencies, LatencyModel};
use blendhouse::DatabaseConfig;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PHASES: [usize; 4] = [1, 2, 4, 8];
const PHASE_TIME: Duration = Duration::from_millis(1200);
const CLIENTS: usize = 8;

fn run(serving: bool) -> Vec<f64> {
    let data = DatasetSpec::cohere_sim().generate();
    let mut cfg = DatabaseConfig {
        real_time: true,
        latencies: DeploymentLatencies {
            remote_store: LatencyModel::new(Duration::from_micros(1_000), Duration::from_nanos(1)),
            local_disk: LatencyModel::ZERO,
            rpc: LatencyModel::fixed(Duration::from_micros(100)),
        },
        default_workers: 1,
        ..Default::default()
    };
    cfg.table.segment_max_rows = 1024;
    cfg.vw.serving_enabled = serving;
    cfg.vw.synchronous_warm = false;
    // Each per-segment search occupies a worker core for 300µs of charged
    // (overlappable) service time — capacity, not host cores, is the cap.
    cfg.vw.worker.compute_per_segment = LatencyModel::fixed(Duration::from_micros(300));
    let db = Arc::new(build_database(&data, cfg, &TableOptions::default()));
    db.preload("bench", "default").unwrap();

    let sqls: Arc<Vec<String>> = Arc::new(
        vector_search(&data, 32, 10, 11)
            .iter()
            .map(|q| q.to_sql("bench", "emb"))
            .collect(),
    );

    let mut qps_by_phase = Vec::new();
    let vw = db.vw("default").unwrap();
    for (pi, &workers) in PHASES.iter().enumerate() {
        // Scale up to the phase's worker count (records previous owners so
        // serving can route).
        let segments = db.table("bench").unwrap().segments();
        while vw.worker_count() < workers {
            vw.scale_up(&segments);
        }
        let pool = Arc::new(CpuPool::new(workers));
        let stop = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let db = db.clone();
            let pool = pool.clone();
            let stop = stop.clone();
            let done = done.clone();
            let sqls = sqls.clone();
            handles.push(std::thread::spawn(move || {
                let mut qi = c;
                while !stop.load(Ordering::Relaxed) {
                    let _slot = pool.acquire();
                    let _ = db.execute(&sqls[qi % sqls.len()]);
                    done.fetch_add(1, Ordering::Relaxed);
                    qi += 1;
                }
            }));
        }
        let start = Instant::now();
        std::thread::sleep(PHASE_TIME);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let qps = done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
        println!(
            "[fig18] serving={serving} phase {} ({} workers): {qps:.0} qps",
            pi + 1,
            workers
        );
        qps_by_phase.push(qps);
    }
    qps_by_phase
}

fn main() {
    let with_serving = run(true);
    let without = run(false);
    let mut rows = Vec::new();
    for (i, &w) in PHASES.iter().enumerate() {
        rows.push(vec![
            format!("{w}"),
            format!("{:.0}", with_serving[i]),
            format!("{:.0}", without[i]),
            format!("{:.2}x", with_serving[i] / with_serving[0]),
        ]);
    }
    assert!(
        with_serving[3] > with_serving[0] * 2.0,
        "QPS should grow substantially with workers: {:?}",
        with_serving
    );
    print_table(
        "Fig 18: QPS immediately after scaling (workers 1→2→4→8)",
        &["workers", "QPS (serving)", "QPS (no serving)", "scaling vs 1 worker"],
        &rows,
    );
}
