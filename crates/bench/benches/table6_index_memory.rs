//! **Table VI** — memory consumption of different index types over the
//! production-style dataset.
//!
//! Paper shape (at 30M rows): HNSW 596 GB > HNSWSQ 238 GB > IVFPQFS 91 GB —
//! roughly 6.5 : 2.6 : 1. The same ratio ladder must hold at our scale.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::print_table;
use bh_bench::setup::{build_database, TableOptions};
use blendhouse::DatabaseConfig;

fn main() {
    let data = DatasetSpec::production_sim().generate();
    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    for (label, clause) in [
        ("BH-HNSW", format!("HNSW('DIM={}', 'M=16')", data.dim())),
        ("BH-HNSWSQ", format!("HNSWSQ('DIM={}', 'M=16')", data.dim())),
        ("BH-IVFPQFS", format!("IVFPQFS('DIM={}')", data.dim())),
    ] {
        let db = build_database(
            &data,
            DatabaseConfig::default(),
            &TableOptions { index_clause: Some(clause), ..Default::default() },
        );
        let table = db.table("bench").unwrap();
        // Resident size = sum over per-segment indexes, loaded as a worker
        // would hold them in its memory cache.
        let bytes: usize = table
            .segments()
            .iter()
            .map(|m| {
                table
                    .load_index(m)
                    .unwrap()
                    .map(|idx| idx.memory_usage())
                    .unwrap_or(0)
            })
            .sum();
        let mb = bytes as f64 / (1 << 20) as f64;
        println!("[table6] {label}: {mb:.1} MB");
        sizes.push(bytes);
        rows.push(vec![label.to_string(), format!("{mb:.1}")]);
    }
    assert!(sizes[0] > sizes[1], "HNSW must outweigh HNSWSQ");
    assert!(sizes[1] > sizes[2], "HNSWSQ must outweigh IVFPQFS");
    let ratio = sizes[0] as f64 / sizes[2] as f64;
    println!("[table6] HNSW : IVFPQFS ratio = {ratio:.1} (paper: ~6.5)");
    print_table(
        "Table VI: memory consumption of different index types",
        &["index", "size (MB)"],
        &rows,
    );
}
