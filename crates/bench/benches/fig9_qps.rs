//! **Fig. 9** — QPS comparison of BlendHouse, pgvector and Milvus on
//! VectorBench-style workloads: pure vector search, hybrid with ~99% pass
//! fraction (the paper's "1% selectivity"), and hybrid with ~1% pass
//! fraction (the paper's "99% selectivity").
//!
//! Paper shape: BlendHouse wins everywhere; at a ~1% pass fraction
//! BlendHouse (via its CBO) and Milvus (via its fallback rule) brute-force
//! the few qualifying rows with full recall and very high QPS, while
//! pgvector's single-shot post-filter collapses to <10% recall.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{
    build_database, loaded_milvus, loaded_pgvector, recall_of, result_ids, to_sim_filter,
    TableOptions,
};
use bh_bench::workloads::{filtered_search, ground_truth, vector_search, HybridQuery};
use bh_baselines::BaselineSystem;
use bh_bench::datasets::Dataset;
use bh_vector::SearchParams;
use blendhouse::DatabaseConfig;
use std::time::Duration;

const K: usize = 10;
const EF: usize = 128;

fn workloads(data: &Dataset) -> Vec<(&'static str, Vec<HybridQuery>)> {
    vec![
        ("vector-search", vector_search(data, 24, K, 1)),
        ("hybrid pass~99%", filtered_search(data, 24, K, 0.99, 2)),
        ("hybrid pass~1%", filtered_search(data, 24, K, 0.01, 3)),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for spec in [DatasetSpec::cohere_sim(), DatasetSpec::openai_sim()] {
        let data = spec.generate();
        let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
        let opts = blendhouse::QueryOptions {
            search: SearchParams::default().with_ef(EF),
            ..db.default_options()
        };
        let milvus = loaded_milvus(&data);
        let pg = loaded_pgvector(&data);
        let params = SearchParams::default().with_ef(EF);

        for (wname, queries) in workloads(&data) {
            let truths: Vec<_> = queries.iter().map(|q| ground_truth(&data, q, None)).collect();

            // BlendHouse.
            let sqls: Vec<String> = queries.iter().map(|q| q.to_sql("bench", "emb")).collect();
            let mut qi = 0;
            let bh_qps = measure_qps(24, Duration::from_millis(600), || {
                let rs = db.execute_with(&sqls[qi % sqls.len()], &opts).unwrap().rows();
                std::hint::black_box(rs);
                qi += 1;
            });
            let bh_recall: f64 = queries
                .iter()
                .zip(&truths)
                .map(|(q, t)| {
                    let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
                    recall_of(&result_ids(&rs), t)
                })
                .sum::<f64>()
                / queries.len() as f64;

            // Baselines.
            let mut baseline_row = Vec::new();
            for sys in [&milvus as &dyn BaselineSystem, &pg as &dyn BaselineSystem] {
                let mut qi = 0;
                let qps = measure_qps(24, Duration::from_millis(600), || {
                    let q = &queries[qi % queries.len()];
                    let f = to_sim_filter(q);
                    std::hint::black_box(
                        sys.search(&q.vector, q.k, &params, f.as_ref()).unwrap(),
                    );
                    qi += 1;
                });
                let recall: f64 = queries
                    .iter()
                    .zip(&truths)
                    .map(|(q, t)| {
                        let f = to_sim_filter(q);
                        let hits = sys.search(&q.vector, q.k, &params, f.as_ref()).unwrap();
                        let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
                        recall_of(&ids, t)
                    })
                    .sum::<f64>()
                    / queries.len() as f64;
                baseline_row.push((qps, recall));
            }

            println!(
                "[fig9] {} / {wname}: BH {bh_qps:.0} qps (r={bh_recall:.3}) | \
                 Milvus {:.0} qps (r={:.3}) | pgvector {:.0} qps (r={:.3})",
                spec.name,
                baseline_row[0].0,
                baseline_row[0].1,
                baseline_row[1].0,
                baseline_row[1].1
            );
            rows.push(vec![
                spec.name.to_string(),
                wname.to_string(),
                format!("{bh_qps:.0} (r={bh_recall:.3})"),
                format!("{:.0} (r={:.3})", baseline_row[0].0, baseline_row[0].1),
                format!("{:.0} (r={:.3})", baseline_row[1].0, baseline_row[1].1),
            ]);
            if wname == "hybrid pass~1%" {
                assert!(
                    baseline_row[1].1 < 0.5,
                    "pgvector post-filter should lose recall at tiny pass fractions, got {}",
                    baseline_row[1].1
                );
                assert!(bh_recall > 0.95, "BlendHouse brute-force path must keep recall");
            }
        }
    }
    print_table(
        "Fig 9: QPS (and recall) by workload and system",
        &["dataset", "workload", "BlendHouse", "MilvusSim", "PgvectorSim"],
        &rows,
    );
}
