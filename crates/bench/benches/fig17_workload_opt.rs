//! **Fig. 17** — performance breakdown of the workload-aware optimizations
//! (§IV-C, §V-B8): baseline → +READ_Opt (fine-grained block reads + split
//! adaptive column caches) → +READ_Opt+Query_Opt (plan cache +
//! short-circuit processing).
//!
//! Paper shape: READ_Opt gives a large step (theirs +124%), Query_Opt a
//! further step (+206% total) on a repetitive hybrid workload.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::filtered_search;
use bh_cluster::worker::WorkerConfig;
use bh_common::{DeploymentLatencies, LatencyModel};
use blendhouse::{DatabaseConfig, QueryOptions};
use std::time::Duration;

fn main() {
    let data = DatasetSpec::cohere_sim().generate();
    // A disaggregated latency profile so remote block reads have real cost.
    let latencies = DeploymentLatencies {
        remote_store: LatencyModel::new(Duration::from_micros(150), Duration::from_nanos(0)),
        local_disk: LatencyModel::ZERO,
        rpc: LatencyModel::ZERO,
    };

    let run = |worker: WorkerConfig, opts_patch: &dyn Fn(QueryOptions) -> QueryOptions| {
        let mut cfg = DatabaseConfig { real_time: true, latencies, ..Default::default() };
        cfg.vw.worker = worker;
        let db = build_database(&data, cfg, &TableOptions::default());
        db.preload("bench", "default").unwrap();
        let sqls: Vec<String> = filtered_search(&data, 24, 10, 0.4, 8)
            .iter()
            .map(|q| q.to_sql("bench", "emb"))
            .collect();
        let opts = opts_patch(db.default_options());
        let mut qi = 0;
        measure_qps(24, Duration::from_millis(1200), || {
            std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], &opts).unwrap());
            qi += 1;
        })
    };

    let baseline_worker = WorkerConfig {
        fine_grained_reads: false,
        block_meta_bytes: 0,
        block_data_bytes: 0,
        ..Default::default()
    };
    let optimized_worker = WorkerConfig::default();

    let no_query_opt = |o: QueryOptions| QueryOptions {
        enable_plan_cache: false,
        enable_short_circuit: false,
        ..o
    };
    let full_query_opt = |o: QueryOptions| o;

    let baseline = run(baseline_worker.clone(), &no_query_opt);
    let read_opt = run(optimized_worker.clone(), &no_query_opt);
    let full = run(optimized_worker, &full_query_opt);

    let pct = |x: f64| (x / baseline - 1.0) * 100.0;
    println!(
        "[fig17] baseline {baseline:.0} | +READ_Opt {read_opt:.0} ({:+.1}%) | \
         +READ_Opt+Query_Opt {full:.0} ({:+.1}%)",
        pct(read_opt),
        pct(full)
    );
    assert!(read_opt > baseline, "READ_Opt must improve over baseline");
    assert!(full >= read_opt, "Query_Opt must not regress");
    print_table(
        "Fig 17: workload-aware optimization breakdown",
        &["configuration", "QPS", "vs baseline"],
        &[
            vec!["baseline".into(), format!("{baseline:.0}"), "+0.0%".into()],
            vec!["+READ_Opt".into(), format!("{read_opt:.0}"), format!("{:+.1}%", pct(read_opt))],
            vec![
                "+READ_Opt+Query_Opt".into(),
                format!("{full:.0}"),
                format!("{:+.1}%", pct(full)),
            ],
        ],
    );
}
