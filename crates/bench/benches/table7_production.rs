//! **Table VII** — production image-search workload: search latency and
//! recall for Milvus and BlendHouse with and without partitioning, plus
//! pgvector's recall collapse (§V-C1).
//!
//! Paper shape: BlendHouse beats Milvus; partitioning speeds both up;
//! BlendHouse-Partition is fastest overall; pgvector recall < 0.35 so its
//! latency is not comparable.
//!
//! Milvus partitioning is emulated the way Milvus users do it: one
//! collection per partition-key bucket, with the client fanning out to the
//! buckets the filter overlaps.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{fmt_duration, measure_latency, print_table};
use bh_bench::setup::{load_baseline, recall_of, result_ids, second_attr, to_sim_filter};
use bh_bench::workloads::{ground_truth, production_search};
use bh_baselines::{BaselineSystem, MilvusSim};
use bh_common::TopK;
use bh_storage::value::Value;
use bh_vector::SearchParams;
use blendhouse::{Database, DatabaseConfig};
use std::time::Duration;

const K: usize = 100;
const BUCKETS: i64 = 4; // x-quartile partitions
const BUCKET_WIDTH: i64 = 250_000;

fn build_blendhouse(data: &bh_bench::datasets::Dataset, partitioned: bool) -> Database {
    let db = Database::new(DatabaseConfig::default());
    let part = if partitioned { "PARTITION BY pbucket CLUSTER BY emb INTO 12 BUCKETS" } else { "" };
    db.execute(&format!(
        "CREATE TABLE bench (
           id UInt64, x Int64, y Int64, pbucket Int64, emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM={}', 'M=16')
         ) ORDER BY id {part}",
        data.dim()
    ))
    .unwrap();
    let table = db.table("bench").unwrap();
    let ys = second_attr(data);
    let mut rows = Vec::with_capacity(4096);
    for i in 0..data.n() {
        rows.push(vec![
            Value::UInt64(i as u64),
            Value::Int64(data.rand_int[i]),
            Value::Int64(ys[i]),
            Value::Int64(data.rand_int[i] / BUCKET_WIDTH),
            Value::Vector(data.vector(i).to_vec()),
        ]);
        if rows.len() == 4096 {
            table.insert_rows(std::mem::take(&mut rows)).unwrap();
        }
    }
    if !rows.is_empty() {
        table.insert_rows(rows).unwrap();
    }
    db
}

fn main() {
    let data = DatasetSpec::production_sim().generate();
    let ys = second_attr(&data);
    let queries = production_search(&data, 16, K, 9);
    let truths: Vec<_> = queries.iter().map(|q| ground_truth(&data, q, Some(&ys))).collect();
    let params = SearchParams::default().with_ef(256);
    let mut rows_out = Vec::new();
    let mut latencies = std::collections::BTreeMap::new();

    // ---- Milvus, unpartitioned.
    let mut milvus = MilvusSim::with_defaults(data.dim());
    load_baseline(&mut milvus, &data);
    milvus.finalize().unwrap();
    {
        let mut qi = 0;
        let lat = measure_latency(16, || {
            let q = &queries[qi % queries.len()];
            std::hint::black_box(
                milvus.search(&q.vector, K, &params, to_sim_filter(q).as_ref()).unwrap(),
            );
            qi += 1;
        });
        let recall: f64 = queries
            .iter()
            .zip(&truths)
            .map(|(q, t)| {
                let ids: Vec<u64> = milvus
                    .search(&q.vector, K, &params, to_sim_filter(q).as_ref())
                    .unwrap()
                    .iter()
                    .map(|n| n.id)
                    .collect();
                recall_of(&ids, t)
            })
            .sum::<f64>()
            / queries.len() as f64;
        latencies.insert("Milvus", lat);
        rows_out.push(vec!["Milvus".into(), format!("{recall:.4}"), fmt_duration(lat)]);
    }

    // ---- Milvus with partitions: one collection per x-quartile. The
    // per-query gRPC overhead is paid once per client request (the fan-out
    // to partitions happens server-side), so the partition collections carry
    // no per-search overhead of their own.
    let mut partitions: Vec<MilvusSim> = (0..BUCKETS)
        .map(|_| {
            MilvusSim::new(
                data.dim(),
                bh_baselines::milvus::MilvusConfig {
                    per_query_overhead: Duration::ZERO,
                    ..Default::default()
                },
            )
        })
        .collect();
    {
        let xs: Vec<f64> = data.rand_int.iter().map(|&v| v as f64).collect();
        let ys_f: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        for i in 0..data.n() {
            let b = (data.rand_int[i] / BUCKET_WIDTH).min(BUCKETS - 1) as usize;
            partitions[b]
                .ingest(
                    data.vector(i),
                    &[i as u64],
                    &[("x", &xs[i..=i]), ("y", &ys_f[i..=i])],
                )
                .unwrap();
        }
        for p in &mut partitions {
            p.finalize().unwrap();
        }
        let search_partitioned = |q: &bh_bench::workloads::HybridQuery| {
            std::thread::sleep(Duration::from_micros(250)); // one gRPC entry
            let (_, lo, hi) = &q.ranges[0]; // x range
            let b_lo = (lo / BUCKET_WIDTH).clamp(0, BUCKETS - 1);
            let b_hi = (hi / BUCKET_WIDTH).clamp(0, BUCKETS - 1);
            let mut tk = TopK::new(K);
            for b in b_lo..=b_hi {
                let f = to_sim_filter(q);
                for nb in partitions[b as usize]
                    .search(&q.vector, K, &params, f.as_ref())
                    .unwrap()
                {
                    tk.push(nb.distance, nb.id);
                }
            }
            tk.into_sorted().into_iter().map(|s| s.item).collect::<Vec<u64>>()
        };
        let mut qi = 0;
        let lat = measure_latency(16, || {
            std::hint::black_box(search_partitioned(&queries[qi % queries.len()]));
            qi += 1;
        });
        let recall: f64 = queries
            .iter()
            .zip(&truths)
            .map(|(q, t)| recall_of(&search_partitioned(q), t))
            .sum::<f64>()
            / queries.len() as f64;
        latencies.insert("Milvus-Partition", lat);
        rows_out.push(vec!["Milvus-Partition".into(), format!("{recall:.4}"), fmt_duration(lat)]);
    }

    // ---- BlendHouse ± partition.
    for (label, partitioned) in [("BlendHouse", false), ("BlendHouse-Partition", true)] {
        let db = build_blendhouse(&data, partitioned);
        let opts = blendhouse::QueryOptions {
            search: params,
            prune: if partitioned {
                bh_cluster::scheduler::PruneConfig {
                    scalar: true,
                    semantic_fraction: 0.4,
                    min_segments: 2,
                }
            } else {
                bh_cluster::scheduler::PruneConfig::default()
            },
            ..db.default_options()
        };
        let sql_of = |q: &bh_bench::workloads::HybridQuery| {
            let mut sql = q.to_sql("bench", "emb");
            if partitioned {
                let (_, lo, hi) = &q.ranges[0];
                sql = sql.replace(
                    "WHERE ",
                    &format!(
                        "WHERE pbucket BETWEEN {} AND {} AND ",
                        lo / BUCKET_WIDTH,
                        hi / BUCKET_WIDTH
                    ),
                );
            }
            sql
        };
        let mut qi = 0;
        let lat = measure_latency(16, || {
            let _ = std::hint::black_box(
                db.execute_with(&sql_of(&queries[qi % queries.len()]), &opts),
            );
            qi += 1;
        });
        let recall: f64 = queries
            .iter()
            .zip(&truths)
            .map(|(q, t)| {
                let rs = db.execute_with(&sql_of(q), &opts).unwrap().rows();
                recall_of(&result_ids(&rs), t)
            })
            .sum::<f64>()
            / queries.len() as f64;
        latencies.insert(
            if partitioned { "BlendHouse-Partition" } else { "BlendHouse" },
            lat,
        );
        rows_out.push(vec![label.into(), format!("{recall:.4}"), fmt_duration(lat)]);
    }

    // ---- pgvector: recall only (single-shot post-filter with k=100 under a
    // ~25% pass-fraction filter cannot fill the result set).
    {
        let pg = bh_bench::setup::loaded_pgvector(&data);
        let recall: f64 = queries
            .iter()
            .zip(&truths)
            .map(|(q, t)| {
                let ids: Vec<u64> = pg
                    .search(&q.vector, K, &params, to_sim_filter(q).as_ref())
                    .unwrap()
                    .iter()
                    .map(|n| n.id)
                    .collect();
                recall_of(&ids, t)
            })
            .sum::<f64>()
            / queries.len() as f64;
        rows_out.push(vec!["pgvector".into(), format!("{recall:.4}"), "-".into()]);
        assert!(recall < 0.6, "pgvector recall should collapse, got {recall}");
    }

    // Speedups vs unpartitioned Milvus.
    let base = latencies["Milvus"].as_secs_f64();
    for row in &mut rows_out {
        let name = row[0].clone();
        let speedup = latencies
            .get(name.as_str())
            .map(|l| format!("{:.2}x", base / l.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        row.push(speedup);
    }
    for (name, lat) in &latencies {
        println!("[table7] {name}: {}", fmt_duration(*lat));
    }
    // At laptop scale BlendHouse's CBO already brute-forces the qualifying
    // rows cheaply, so partition pruning lands within noise here (fig16
    // isolates the partitioning gains at matched segment sizes); assert it
    // is at worst neutral. Milvus' partition fan-out must show the win.
    assert!(
        latencies["BlendHouse-Partition"].as_secs_f64()
            < latencies["BlendHouse"].as_secs_f64() * 1.25,
        "partitioning must not hurt BlendHouse"
    );
    assert!(
        latencies["Milvus-Partition"] < latencies["Milvus"],
        "partitioning should speed Milvus up"
    );
    println!(
        "[table7] BlendHouse-Partition speedup over Milvus: {:.2}x",
        base / latencies["BlendHouse-Partition"].as_secs_f64()
    );
    print_table(
        "Table VII: production workload — recall, latency, speedup vs Milvus",
        &["system", "recall", "latency", "speedup"],
        &rows_out,
    );
}
