//! **Fig. 19** — impact of the number of segments on hybrid-query QPS under
//! a high-write-frequency workload, and compaction's role in bounding it
//! (§V-C3).
//!
//! Paper shape: per-worker QPS decreases as segments accumulate; background
//! compaction keeps the segment count converged inside a band.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use bh_storage::value::Value;
use blendhouse::DatabaseConfig;
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let data = DatasetSpec::laion_sim().generate();
    let mut cfg = DatabaseConfig::default();
    cfg.table.segment_max_rows = 256; // small segments → high write frequency
    let db = build_database(&data, cfg, &TableOptions::default());
    let table = db.table("bench").unwrap();
    let sqls: Vec<String> = vector_search(&data, 16, 10, 12)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();

    // Samples of (segment count, QPS) as writes stream in; compaction runs
    // periodically like the background task would.
    let mut samples: Vec<(usize, f64)> = Vec::new();
    let mut max_segments_seen = 0usize;
    let mut next_id = data.n() as u64;
    for step in 0..24 {
        // One write burst.
        let rows: Vec<Vec<Value>> = (0..512)
            .map(|i| {
                let row = (next_id as usize + i) % data.n();
                vec![
                    Value::UInt64(next_id + i as u64),
                    Value::Int64(data.rand_int[row]),
                    Value::Int64(0),
                    Value::Str(String::new()),
                    Value::Float64(data.similarity[row]),
                    Value::Vector(data.vector(row).to_vec()),
                ]
            })
            .collect();
        next_id += 512;
        table.insert_rows(rows).unwrap();

        let segs = table.segment_count();
        max_segments_seen = max_segments_seen.max(segs);
        let mut qi = 0;
        let qps = measure_qps(8, Duration::from_millis(150), || {
            std::hint::black_box(db.execute(&sqls[qi % sqls.len()]).unwrap());
            qi += 1;
        });
        samples.push((segs, qps));

        // Periodic background compaction bounds the segment count.
        if step % 6 == 5 {
            let report = db.compact("bench").unwrap();
            println!(
                "[fig19] step {step}: compacted {} segments into {}",
                report.merged_segments, report.new_segments
            );
        }
    }

    // Bin samples by segment count (paper's normalization into bins).
    let bin_width = (max_segments_seen / 6).max(1);
    let mut bins: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for (segs, qps) in &samples {
        bins.entry(segs / bin_width).or_default().push(*qps);
    }
    let mut rows_out = Vec::new();
    let mut bin_means: Vec<(usize, f64)> = Vec::new();
    for (bin, qpss) in &bins {
        let mean = qpss.iter().sum::<f64>() / qpss.len() as f64;
        bin_means.push((*bin, mean));
        rows_out.push(vec![
            format!("{}–{}", bin * bin_width, (bin + 1) * bin_width - 1),
            format!("{}", qpss.len()),
            format!("{mean:.0}"),
        ]);
    }
    // Shape check: the lowest-segment-count bin outperforms the highest.
    if bin_means.len() >= 2 {
        let first = bin_means.first().unwrap().1;
        let last = bin_means.last().unwrap().1;
        assert!(
            first > last,
            "QPS should fall as segments accumulate ({first:.0} vs {last:.0})"
        );
    }
    println!(
        "[fig19] compaction kept segment count ≤ {} across {} write bursts",
        max_segments_seen,
        samples.len()
    );
    print_table(
        "Fig 19: QPS by segment-count bin (high write frequency, with compaction)",
        &["segment-count bin", "samples", "mean QPS"],
        &rows_out,
    );
}
