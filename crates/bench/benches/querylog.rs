//! Always-on query-log overhead: end-to-end `Database::execute` latency over
//! a 64-statement hybrid workload with the log disabled, enabled (the
//! production default), and enabled with slow-query capture retaining every
//! span tree (threshold 0 — the worst case, every statement traced).
//!
//! The log's hot-path cost is one counter sample before dispatch and one
//! ring append after, so the acceptance bar is tight: enabled-vs-disabled
//! median overhead ≤ 1%. Loops are interleaved within each run and the
//! per-loop minimum kept (least-perturbed observation on a shared box).
//! Results go to `target/bench-fresh/BENCH_querylog.json` in the committed
//! schema so `cargo xtask bench-diff` covers them.

use bh_bench::harness::{print_table, write_fresh_json, Timer};
use bh_common::querylog::SlowQueryPolicy;
use bh_storage::table::TableStoreConfig;
use blendhouse::{Database, DatabaseConfig};
use std::hint::black_box;

const BATCH: usize = 64;
const INTERLEAVES: usize = 7;
const RUNS: usize = 5;

fn build_db() -> Database {
    let db = Database::new(DatabaseConfig {
        table: TableStoreConfig { segment_max_rows: 64, ..Default::default() },
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE docs (
           id UInt64, label String, emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM=4')
         ) ORDER BY id",
    )
    .expect("create table");
    let values: Vec<String> = (0..600)
        .map(|i| {
            let c = (i % 5) as f32 * 6.0 + i as f32 * 1e-4;
            format!("({i}, 'l{}', [{c}, {:.4}, {:.4}, {:.4}])", i % 2, c + 0.1, c + 0.2, c - 0.1)
        })
        .collect();
    db.execute(&format!("INSERT INTO docs VALUES {}", values.join(", "))).expect("insert");
    db
}

/// The batch-64 workload: cluster-centred top-k with a scalar filter every
/// third statement, matching the batch_exec hybrid mix.
fn workload() -> Vec<String> {
    (0..BATCH)
        .map(|i| {
            let c = (i % 5) as f32 * 6.0;
            let w = if i % 3 == 0 { "WHERE label = 'l0' " } else { "" };
            format!(
                "SELECT id FROM docs {w}ORDER BY \
                 L2Distance(emb, [{c}.0, {:.1}, {:.1}, {:.1}]) LIMIT {}",
                c + 0.1,
                c + 0.2,
                c - 0.1,
                1 + i % 16,
            )
        })
        .collect()
}

/// ns/query for one pass over the workload.
fn run_batch(db: &Database, sqls: &[String]) -> f64 {
    let t = Timer::start();
    for sql in sqls {
        black_box(db.execute(sql).expect("query"));
    }
    t.secs() * 1e9 / sqls.len() as f64
}

struct Run {
    log_off_ns: f64,
    log_on_ns: f64,
    capture_ns: f64,
}

fn one_run(db: &Database, sqls: &[String]) -> Run {
    let (mut off_min, mut on_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..INTERLEAVES {
        db.query_log().set_enabled(false);
        off_min = off_min.min(run_batch(db, sqls));
        db.query_log().set_enabled(true);
        on_min = on_min.min(run_batch(db, sqls));
    }

    // Worst-case slow capture: every statement's span tree is retained.
    db.set_slow_query_policy(Some(SlowQueryPolicy { threshold_nanos: 0, capture_errors: true }));
    let mut cap_min = f64::INFINITY;
    for _ in 0..INTERLEAVES {
        cap_min = cap_min.min(run_batch(db, sqls));
    }
    db.set_slow_query_policy(None);

    Run { log_off_ns: off_min, log_on_ns: on_min, capture_ns: cap_min }
}

fn main() {
    let db = build_db();
    let sqls = workload();
    // Warm caches and residency so every timed pass sees the same state.
    run_batch(&db, &sqls);

    let mut rows = Vec::new();
    let mut cases = Vec::new();
    for run in 1..=RUNS {
        let r = one_run(&db, &sqls);
        let overhead_pct = (r.log_on_ns - r.log_off_ns) / r.log_off_ns * 100.0;
        let capture_pct = (r.capture_ns - r.log_off_ns) / r.log_off_ns * 100.0;
        rows.push(vec![
            format!("{run}"),
            format!("{:.0}", r.log_off_ns),
            format!("{:.0}", r.log_on_ns),
            format!("{overhead_pct:.2}"),
            format!("{:.0}", r.capture_ns),
            format!("{capture_pct:.2}"),
        ]);
        cases.push(format!(
            "    {{ \"run\": {run}, \"log_off_ns_per_op\": {:.0}, \
             \"log_on_ns_per_op\": {:.0}, \"overhead_pct\": {overhead_pct:.2}, \
             \"slow_capture_ns_per_op\": {:.0}, \"slow_capture_overhead_pct\": {capture_pct:.2} }}",
            r.log_off_ns, r.log_on_ns, r.capture_ns
        ));
    }
    print_table(
        "query-log overhead on the batch-64 hybrid workload (ns/query)",
        &["run", "log off", "log on", "overhead %", "slow capture", "capture %"],
        &rows,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"query-log overhead: end-to-end Database::execute with the always-on query log off, on, and with slow-query capture retaining every span tree\",\n  \
         \"method\": \"crates/bench/benches/querylog.rs: {BATCH}-statement hybrid top-k workload (filter every 3rd statement), off/on loops interleaved {INTERLEAVES}x per run with per-loop min kept; slow capture = threshold 0, every statement traced; {RUNS} runs reported.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        cases.join(",\n"),
    );
    write_fresh_json("BENCH_querylog.json", &json);
}
