//! **Fig. 15** — QPS with the cost-based optimizer enabled vs disabled, on
//! the hybrid workload whose filter passes ~99% of rows (the paper's "1%
//! selectivity" case, §V-B6).
//!
//! Paper shape: with CBO the optimizer picks the cheap post-filter strategy;
//! without it the system defaults to pre-filter, which materializes a
//! near-full bitset per segment before searching — lower QPS.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::filtered_search;
use blendhouse::{DatabaseConfig, QueryOptions, Strategy};
use std::time::Duration;

fn main() {
    let data = DatasetSpec::cohere_sim().generate();
    let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
    let sqls: Vec<String> = filtered_search(&data, 24, 10, 0.99, 4)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();

    let run = |opts: &QueryOptions| {
        let mut qi = 0;
        measure_qps(24, Duration::from_millis(800), || {
            std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], opts).unwrap());
            qi += 1;
        })
    };

    let cbo_on = run(&QueryOptions { enable_cbo: true, ..db.default_options() });
    let cbo_off = run(&QueryOptions {
        enable_cbo: false,
        default_strategy: Strategy::PreFilter,
        enable_plan_cache: false,
        ..db.default_options()
    });

    println!("[fig15] CBO on: {cbo_on:.0} qps | CBO off (pre-filter default): {cbo_off:.0} qps");
    assert!(
        cbo_on > cbo_off,
        "CBO should beat the pre-filter default at ~99% pass fraction"
    );
    print_table(
        "Fig 15: QPS with and without the cost-based optimizer (pass~99% filter)",
        &["configuration", "QPS"],
        &[
            vec!["CBO enabled (picks post-filter)".into(), format!("{cbo_on:.0}")],
            vec!["CBO disabled (pre-filter default)".into(), format!("{cbo_off:.0}")],
        ],
    );
}
