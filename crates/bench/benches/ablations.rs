//! Ablations of the design choices DESIGN.md calls out — each isolates one
//! mechanism and compares it against the alternative the paper (or this
//! reproduction) rejected.
//!
//! 1. Native iterative search vs the generic doubling-k restart wrapper
//!    (§III-B post-filter): redundant visits and wall time.
//! 2. Multi-probe consistent hashing vs a single-probe ring (Fig. 3):
//!    load balance at equal ring size.
//! 3. Pipelined vs staged ingest (§V-B1): the overlap that produces
//!    Table IV's gap, isolated inside one system.
//! 4. Row-offset labels vs primary-key labels in per-segment indexes
//!    (§III-B): cost of mapping search hits back to scalar rows.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, Timer};
use bh_bench::setup::{build_database, TableOptions};
use bh_cluster::hashring::MultiProbeRing;
use bh_common::WorkerId;
use bh_storage::table::IngestMode;
use bh_vector::{IndexKind, IndexRegistry, IndexSpec, Metric, SearchParams};
use blendhouse::DatabaseConfig;
use std::collections::HashMap;

fn ablation_iterator() -> Vec<Vec<String>> {
    let data = DatasetSpec::laion_sim().generate();
    let reg = IndexRegistry::with_builtins();
    let n = 8_000.min(data.n());
    let ids: Vec<u64> = (0..n as u64).collect();
    let slice = &data.vectors[..n * data.dim()];

    // HNSW has the native resumable iterator; IVFFLAT falls back to the
    // generic doubling-k wrapper.
    let mut out = Vec::new();
    for (label, kind) in [("native (HNSW)", IndexKind::Hnsw), ("generic (IVFFLAT)", IndexKind::IvfFlat)] {
        let spec = IndexSpec::new(kind, data.dim(), Metric::L2).with_param("nlist", 64);
        let mut b = reg.create_builder(&spec).unwrap();
        if b.requires_training() {
            b.train(slice).unwrap();
        }
        b.add_with_ids(slice, &ids).unwrap();
        let idx = b.finish().unwrap();
        let params = SearchParams::default().with_ef(64).with_nprobe(16);
        let q = data.queries(1, 1).remove(0);
        let t = Timer::start();
        let mut it = idx.search_iterator(&q, &params).unwrap();
        let mut pulled = 0;
        // Post-filter style: pull 10 rows at a time until 200 collected.
        while pulled < 200 {
            let batch = it.next_batch(10).unwrap();
            if batch.is_empty() {
                break;
            }
            pulled += batch.len();
        }
        out.push(vec![
            label.to_string(),
            format!("{pulled}"),
            format!("{}", it.visited()),
            format!("{:.2}x", it.visited() as f64 / pulled.max(1) as f64),
            format!("{:.2}ms", t.secs() * 1e3),
        ]);
    }
    out
}

fn ablation_hashing() -> Vec<Vec<String>> {
    let keys: Vec<String> = (0..20_000).map(|i| format!("seg-{i:016x}")).collect();
    let mut out = Vec::new();
    for (label, probes) in [("single-probe ring", 1u32), ("multi-probe (21)", 21u32)] {
        let mut ring = MultiProbeRing::new(probes);
        for w in 0..16 {
            ring.add_worker(WorkerId(w));
        }
        let mut counts = vec![0usize; 16];
        for k in &keys {
            counts[ring.assign(k).unwrap().raw() as usize] += 1;
        }
        let mean = keys.len() as f64 / 16.0;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        out.push(vec![
            label.to_string(),
            format!("{:.2}", max / mean),
            format!("{:.2}", min / mean),
        ]);
    }
    out
}

fn ablation_ingest() -> Vec<Vec<String>> {
    // The pipelining win is overlap between segment persistence (remote I/O,
    // charged on the wall clock) and index construction (CPU); run with a
    // disaggregated latency profile so the overlap is observable even on a
    // single-core host.
    let data = DatasetSpec::cohere_sim().generate();
    let mut out = Vec::new();
    for (label, mode) in [("pipelined", IngestMode::Pipelined), ("staged", IngestMode::Staged)] {
        let mut cfg = DatabaseConfig {
            real_time: true,
            latencies: bh_common::DeploymentLatencies {
                remote_store: bh_common::LatencyModel::new(
                    std::time::Duration::from_millis(4),
                    std::time::Duration::from_nanos(1),
                ),
                local_disk: bh_common::LatencyModel::ZERO,
                rpc: bh_common::LatencyModel::ZERO,
            },
            ..Default::default()
        };
        cfg.table.ingest_mode = mode;
        let t = Timer::start();
        let db = build_database(&data, cfg, &TableOptions::default());
        out.push(vec![label.to_string(), format!("{:.2}s", t.secs())]);
        drop(db);
    }
    out
}

fn ablation_row_offsets() -> Vec<Vec<String>> {
    // Per-segment indexes label rows with offsets; the rejected design labels
    // with primary keys and pays a PK→row lookup per hit. Model the lookup
    // with the hash map a real LSM PK index would consult.
    let data = DatasetSpec::laion_sim().generate();
    let n = 8_000.min(data.n());
    let reg = IndexRegistry::with_builtins();
    let spec = IndexSpec::new(IndexKind::Hnsw, data.dim(), Metric::L2);
    let mut b = reg.create_builder(&spec).unwrap();
    let ids: Vec<u64> = (0..n as u64).collect();
    b.add_with_ids(&data.vectors[..n * data.dim()], &ids).unwrap();
    let idx = b.finish().unwrap();
    let params = SearchParams::default().with_ef(64);
    let queries = data.queries(64, 2);
    // PK table: sparse primary keys → row offsets (8 probes per lookup to
    // model an LSM sparse-index + block walk).
    let pk_map: HashMap<u64, u32> = (0..n as u64).map(|i| (i * 97 + 13, i as u32)).collect();

    let t = Timer::start();
    for q in &queries {
        let hits = idx.search_with_filter(q, 100, &params, None).unwrap();
        std::hint::black_box(hits);
    }
    let offsets_time = t.secs();

    let t = Timer::start();
    let mut acc = 0u64;
    for q in &queries {
        let hits = idx.search_with_filter(q, 100, &params, None).unwrap();
        for h in &hits {
            // PK design: translate every hit through the PK index.
            for probe in 0..8 {
                let pk = h.id * 97 + 13 + probe % 1;
                acc += *pk_map.get(&pk).unwrap_or(&0) as u64;
            }
        }
        std::hint::black_box(hits);
    }
    std::hint::black_box(acc);
    let pk_time = t.secs();
    vec![
        vec!["row offsets (ours)".into(), format!("{:.2}ms", offsets_time * 1e3)],
        vec![
            "primary keys (rejected)".into(),
            format!("{:.2}ms (+{:.0}%)", pk_time * 1e3, (pk_time / offsets_time - 1.0) * 100.0),
        ],
    ]
}

fn main() {
    print_table(
        "Ablation 1: native vs generic search iterator (pull 200 rows, batch 10)",
        &["iterator", "rows returned", "rows visited", "redundancy", "time"],
        &ablation_iterator(),
    );
    print_table(
        "Ablation 2: ring balance, 16 workers × 20k segments (peak/mean, min/mean)",
        &["ring", "peak/mean", "min/mean"],
        &ablation_hashing(),
    );
    print_table(
        "Ablation 3: pipelined vs staged ingest (cohere-sim, HNSW)",
        &["mode", "load time"],
        &ablation_ingest(),
    );
    print_table(
        "Ablation 4: index hit → scalar row mapping",
        &["label scheme", "64 queries × top-100"],
        &ablation_row_offsets(),
    );
}
