//! Batched multi-query execution (DESIGN.md §7): `execute_batch` with the
//! shared atomic top-k pruning bound vs looping `execute_bound` per query,
//! over a 32-segment table at k=10 for batch sizes 1 / 8 / 64.
//!
//! The acceptance shape for the batched path is ≥ 2x aggregate throughput
//! at batch 64: the batch amortizes planning, scheduling, segment pinning
//! and thread fan-out, and bound sharing skips candidates that cannot beat
//! the k-th distance already found.

use bh_common::ids::IdGenerator;
use bh_common::{MetricsRegistry, VirtualClock};
use bh_cluster::vw::{VirtualWarehouse, VwConfig};
use bh_query::bind::{bind_select, BoundSelect};
use bh_query::exec::{QueryEngine, QueryOptions};
use bh_storage::objectstore::InMemoryObjectStore;
use bh_storage::schema::TableSchema;
use bh_storage::table::{TableStore, TableStoreConfig};
use bh_storage::value::{ColumnType, Value};
use bh_vector::{IndexKind, IndexRegistry, Metric};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

const DIM: usize = 32;
const SEGMENTS: usize = 32;
const ROWS_PER_SEGMENT: usize = 200;
const K: usize = 10;

struct Fixture {
    table: Arc<TableStore>,
    vw: VirtualWarehouse,
    engine: QueryEngine,
    queries: Vec<BoundSelect>,
}

fn fixture() -> Fixture {
    let schema = TableSchema::new("t")
        .with_column("id", ColumnType::UInt64)
        .with_column("emb", ColumnType::Vector(DIM))
        .with_vector_index("ann", "emb", IndexKind::Hnsw, DIM, Metric::L2);
    let metrics = MetricsRegistry::new();
    let table = TableStore::new(
        schema,
        InMemoryObjectStore::for_tests(),
        Arc::new(IndexRegistry::with_builtins()),
        TableStoreConfig { segment_max_rows: ROWS_PER_SEGMENT, ..Default::default() },
        Arc::new(IdGenerator::new()),
        metrics.clone(),
    )
    .unwrap();
    let n = SEGMENTS * ROWS_PER_SEGMENT;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let c = (i % 8) as f32 * 4.0;
            let v: Vec<f32> =
                (0..DIM).map(|d| c + ((i * DIM + d) as f32 * 0.37).sin() * 0.5).collect();
            vec![Value::UInt64(i as u64), Value::Vector(v)]
        })
        .collect();
    table.insert_rows(rows).unwrap();
    let vw = VirtualWarehouse::new(
        bh_common::VwId(0),
        "bench",
        VwConfig::default(),
        table.remote_store().clone(),
        table.registry().clone(),
        VirtualClock::shared(),
        metrics.clone(),
        Arc::new(IdGenerator::starting_at(10_000)),
    );
    vw.scale_up(&[]);
    vw.scale_up(&[]);
    vw.preload(&table.segments()).unwrap();
    let engine = QueryEngine::new(metrics);

    // 64 distinct pure top-k statements cycling through the clusters.
    let queries: Vec<BoundSelect> = (0..64)
        .map(|qi| {
            let c = (qi % 8) as f32 * 4.0;
            let coords: Vec<String> =
                (0..DIM).map(|d| format!("{:.4}", c + (d as f32 * 0.21).cos() * 0.3)).collect();
            let sql = format!(
                "SELECT id, dist FROM t ORDER BY L2Distance(emb, [{}]) AS dist LIMIT {K}",
                coords.join(", ")
            );
            let stmt = match bh_sql::parse_statement(&sql).unwrap() {
                bh_sql::Statement::Select(sel) => sel,
                other => panic!("expected SELECT, got {other:?}"),
            };
            bind_select(table.schema(), &stmt).unwrap()
        })
        .collect();
    Fixture { table: Arc::new(table), vw, engine, queries }
}

fn bench_batch_exec(c: &mut Criterion) {
    let fix = fixture();
    let mut g = c.benchmark_group("batch_exec");
    for batch in [1usize, 8, 64] {
        let stmts = &fix.queries[..batch];
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("looped_execute", batch), &batch, |b, _| {
            b.iter(|| {
                for q in stmts {
                    black_box(
                        fix.engine
                            .execute_bound(&fix.table, &fix.vw, &QueryOptions::default(), q)
                            .unwrap(),
                    );
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("execute_batch", batch), &batch, |b, _| {
            b.iter(|| {
                black_box(
                    fix.engine
                        .execute_batch(&fix.table, &fix.vw, &QueryOptions::default(), stmts)
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(
            BenchmarkId::new("execute_batch_no_bound", batch),
            &batch,
            |b, _| {
                let opts = QueryOptions { share_bound: false, ..Default::default() };
                b.iter(|| {
                    black_box(fix.engine.execute_batch(&fix.table, &fix.vw, &opts, stmts).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_batch_exec
}
criterion_main!(benches);
