//! **Fig. 7** — IVF search time as a function of row count `N` for different
//! `K_IVF` settings, motivating auto-index parameter selection (§III-B).
//!
//! Paper shape: small `K` wins at small `N` (few centroids to scan), large
//! `K` wins at large `N` (smaller cells), with crossovers in between; the
//! rule/model-based auto selector should track the lower envelope.

use bh_bench::datasets::{Dataset, DatasetSpec};
use bh_bench::harness::{fmt_duration, measure_latency, print_table};
use bh_vector::autoindex::select_kivf_modeled;
use bh_vector::{IndexKind, IndexRegistry, IndexSpec, Metric, SearchParams};
use std::time::Duration;

fn build_ivf(data: &Dataset, n: usize, nlist: usize) -> std::sync::Arc<dyn bh_vector::VectorIndex> {
    let reg = IndexRegistry::with_builtins();
    let spec = IndexSpec::new(IndexKind::IvfPqFs, data.dim(), Metric::L2)
        .with_param("nlist", nlist)
        .with_param("pq_m", data.dim() / 4);
    let mut b = reg.create_builder(&spec).unwrap();
    let slice = &data.vectors[..n * data.dim()];
    b.train(slice).unwrap();
    let ids: Vec<u64> = (0..n as u64).collect();
    b.add_with_ids(slice, &ids).unwrap();
    b.finish().unwrap()
}

fn main() {
    // Scaled-down choice set (the paper sweeps {4096, 16384, 65536} at
    // production N; our N is ~50x smaller so K scales with √50 ≈ 7x).
    let kivf_choices = [64usize, 256, 1024];
    let spec = DatasetSpec::openai_sim();
    let data = spec.generate();
    let n_sweep: Vec<usize> =
        [2_000usize, 5_000, 10_000, 20_000, 40_000].iter().copied().filter(|&n| n <= data.n()).collect();

    let mut rows = Vec::new();
    for &n in &n_sweep {
        let mut cells = vec![format!("{n}")];
        let mut best: (Duration, usize) = (Duration::MAX, 0);
        for &k in &kivf_choices {
            let idx = build_ivf(&data, n, k);
            let queries = data.queries(16, n as u64);
            let params = SearchParams::default().with_nprobe((k / 16).max(1));
            let mut qi = 0;
            let lat = measure_latency(32, || {
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(idx.search_with_filter(q, 10, &params, None).unwrap());
            });
            if lat < best.0 {
                best = (lat, k);
            }
            cells.push(fmt_duration(lat));
        }
        let modeled = select_kivf_modeled(n, 8, &kivf_choices);
        cells.push(format!("{}", best.1));
        cells.push(format!("{modeled}"));
        println!("[fig7] N={n}: empirical best K={} modeled K={modeled}", best.1);
        rows.push(cells);
    }
    print_table(
        "Fig 7: IVF search time vs N for different K_IVF (IVFPQFS)",
        &["N", "K=64", "K=256", "K=1024", "best(empirical)", "auto(model)"],
        &rows,
    );
}
