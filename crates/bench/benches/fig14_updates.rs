//! **Fig. 14** — the impact of updates and compaction on vector search
//! performance (§V-B5).
//!
//! Updates create new row versions plus delete-bitmap entries; queries pay
//! the combine cost, so QPS decays as updated rows accumulate. Compaction
//! drops the dead versions and rebuilds indexes, restoring QPS.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use blendhouse::DatabaseConfig;
use std::time::Duration;

fn main() {
    let data = DatasetSpec::cohere_sim().generate();
    let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
    let queries: Vec<String> = vector_search(&data, 16, 10, 3)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();
    let qps = |db: &blendhouse::Database| {
        let mut qi = 0;
        measure_qps(24, Duration::from_millis(500), || {
            std::hint::black_box(db.execute(&queries[qi % queries.len()]).unwrap());
            qi += 1;
        })
    };

    let baseline = qps(&db);
    let mut rows = vec![vec!["0".into(), format!("{baseline:.0}"), "off".into()]];
    println!("[fig14] 0 updates: {baseline:.0} qps");

    let steps = [2, 5, 10]; // percent of rows updated per step (cumulative)
    let mut updated_total = 0usize;
    let mut degraded = baseline;
    for pct in steps {
        let lo = updated_total;
        let hi = updated_total + data.n() * pct / 100;
        db.execute(&format!(
            "UPDATE bench SET similarity = 0.5 WHERE id >= {lo} AND id < {hi}"
        ))
        .unwrap();
        updated_total = hi;
        degraded = qps(&db);
        println!("[fig14] {updated_total} rows updated (compaction off): {degraded:.0} qps");
        rows.push(vec![
            format!("{updated_total}"),
            format!("{degraded:.0}"),
            "off".into(),
        ]);
    }
    assert!(
        degraded < baseline,
        "updates should depress QPS ({baseline:.0} -> {degraded:.0})"
    );

    // Enable compaction: dead versions dropped, indexes rebuilt.
    let report = db.compact("bench").unwrap();
    let restored = qps(&db);
    println!(
        "[fig14] after compaction (dropped {} rows): {restored:.0} qps",
        report.rows_dropped
    );
    rows.push(vec![format!("{updated_total}"), format!("{restored:.0}"), "on".into()]);
    assert!(
        restored > degraded,
        "compaction should restore QPS ({degraded:.0} -> {restored:.0})"
    );
    print_table(
        "Fig 14: impact of updates and compaction on QPS",
        &["rows updated", "QPS", "compaction"],
        &rows,
    );
}
