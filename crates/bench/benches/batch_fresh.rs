//! Fresh-emitter counterpart of the committed `BENCH_batch.json`: batched
//! segment-major multi-query execution vs looping per query, timed on this
//! machine and written to `target/bench-fresh/BENCH_batch.json` in the
//! committed schema so `cargo xtask bench-diff` covers it.
//!
//! Mirrors the committed method: a 32-segment x 10000-row dim-128 flat
//! table (exceeds typical L3, so scans are memory-bound), per-query loop as
//! the sequential baseline vs segment-major batch order with the per-query
//! `SharedBound` publish/prune rule of `FlatIndex::search_with_bound`.
//! Bit-identity of (id, distance) results between the two paths is asserted
//! before timing, bound on and off.

use bh_bench::harness::{print_table, write_fresh_json, Timer};
use bh_common::SharedBound;
use bh_vector::{
    IndexKind, IndexRegistry, IndexSpec, Metric, Neighbor, SearchParams, VectorIndex,
};
use std::hint::black_box;
use std::sync::Arc;

const DIM: usize = 128;
const SEGMENTS: usize = 32;
const ROWS_PER_SEGMENT: usize = 10_000;
const K: usize = 10;
const BATCHES: [usize; 3] = [1, 8, 64];
const REPS: usize = 2;

fn build_segments(reg: &IndexRegistry) -> Vec<Arc<dyn VectorIndex>> {
    (0..SEGMENTS)
        .map(|s| {
            let base = s * ROWS_PER_SEGMENT;
            let slice: Vec<f32> = (0..ROWS_PER_SEGMENT * DIM)
                .map(|j| {
                    let i = base + j / DIM;
                    let c = (i % 8) as f32 * 4.0;
                    c + ((i * DIM + j % DIM) as f32 * 0.37).sin() * 0.5
                })
                .collect();
            let ids: Vec<u64> = (0..ROWS_PER_SEGMENT).map(|r| (base + r) as u64).collect();
            let spec = IndexSpec::new(IndexKind::Flat, DIM, Metric::L2);
            let mut b = reg.create_builder(&spec).unwrap();
            b.add_with_ids(&slice, &ids).unwrap();
            b.finish().unwrap()
        })
        .collect()
}

fn queries() -> Vec<Vec<f32>> {
    (0..64)
        .map(|qi| {
            let c = (qi % 8) as f32 * 4.0;
            (0..DIM).map(|d| c + (d as f32 * 0.21).cos() * 0.3).collect()
        })
        .collect()
}

fn merge_topk(mut hits: Vec<Neighbor>) -> Vec<Neighbor> {
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    hits.truncate(K);
    hits
}

/// Per-query loop over all segments: the `execute_bound` shape.
fn run_sequential(segments: &[Arc<dyn VectorIndex>], batch: &[Vec<f32>]) -> Vec<Vec<Neighbor>> {
    let params = SearchParams::default();
    batch
        .iter()
        .map(|q| {
            let mut hits = Vec::new();
            for seg in segments {
                hits.extend(seg.search_with_filter(q, K, &params, None).unwrap());
            }
            merge_topk(hits)
        })
        .collect()
}

/// Segment-major batch order (the `run_segment_tasks` shape): each segment
/// is scanned once for all queries consecutively, each query pruning under
/// its own shared bound when `bound` is on. Returns per-query results plus
/// the total bound skips.
fn run_batched(
    segments: &[Arc<dyn VectorIndex>],
    batch: &[Vec<f32>],
    bound: bool,
) -> (Vec<Vec<Neighbor>>, u64) {
    let params = SearchParams::default();
    let bounds: Vec<SharedBound> = batch.iter().map(|_| SharedBound::new()).collect();
    let mut per_query: Vec<Vec<Neighbor>> = vec![Vec::new(); batch.len()];
    for seg in segments {
        for (qi, q) in batch.iter().enumerate() {
            let b = bound.then_some(&bounds[qi]);
            let hits = seg.search_with_bound(q, K, &params, None, b).unwrap();
            per_query[qi].extend(hits);
            if bound {
                let mut d: Vec<f32> =
                    per_query[qi].iter().map(|h| h.distance).collect();
                d.sort_by(f32::total_cmp);
                if let Some(&kth) = d.get(K - 1) {
                    bounds[qi].update(kth);
                }
            }
        }
    }
    let skips = bounds.iter().map(|b| b.skips()).sum();
    (per_query.into_iter().map(merge_topk).collect(), skips)
}

fn main() {
    let reg = IndexRegistry::with_builtins();
    let segments = build_segments(&reg);
    let qs = queries();

    // Bit-identity before timing, bound on and off.
    let seq = run_sequential(&segments, &qs);
    for bound in [true, false] {
        let (batched, _) = run_batched(&segments, &qs, bound);
        for (qi, (s, b)) in seq.iter().zip(&batched).enumerate() {
            let s: Vec<(u64, f32)> = s.iter().map(|n| (n.id, n.distance)).collect();
            let b: Vec<(u64, f32)> = b.iter().map(|n| (n.id, n.distance)).collect();
            assert_eq!(s, b, "query {qi} diverged (bound={bound})");
        }
    }

    let mut rows = Vec::new();
    let mut cases = Vec::new();
    for batch_size in BATCHES {
        let batch = &qs[..batch_size];
        let best_qps = |f: &mut dyn FnMut() -> u64| -> (f64, u64) {
            let mut best = 0.0f64;
            let mut last_aux = 0;
            for _ in 0..REPS {
                let t = Timer::start();
                last_aux = f();
                let qps = batch_size as f64 / t.secs();
                best = best.max(qps);
            }
            (best, last_aux)
        };
        let (sequential_qps, _) = best_qps(&mut || {
            black_box(run_sequential(&segments, batch)).len() as u64
        });
        let (batched_qps, skips) =
            best_qps(&mut || black_box(run_batched(&segments, batch, true)).1);
        let (batched_no_bound_qps, _) =
            best_qps(&mut || black_box(run_batched(&segments, batch, false)).1);
        let speedup = batched_qps / sequential_qps;
        let scanned = (SEGMENTS * ROWS_PER_SEGMENT * batch_size) as f64;
        let skip_rate = skips as f64 / scanned;
        rows.push(vec![
            format!("{batch_size}"),
            format!("{sequential_qps:.1}"),
            format!("{batched_qps:.1}"),
            format!("{batched_no_bound_qps:.1}"),
            format!("{speedup:.2}"),
            format!("{skip_rate:.4}"),
        ]);
        cases.push(format!(
            "    {{ \"batch\": {batch_size}, \"sequential_qps\": {sequential_qps:.1}, \
             \"batched_qps\": {batched_qps:.1}, \"batched_no_bound_qps\": {batched_no_bound_qps:.1}, \
             \"speedup\": {speedup:.2}, \"bound_skip_rate\": {skip_rate:.4} }}"
        ));
    }
    print_table(
        "batched segment-major execution vs per-query loop (QPS)",
        &["batch", "sequential", "batched", "batched no-bound", "speedup", "skip rate"],
        &rows,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"batched multi-query execution (execute_batch) vs looping execute per query\",\n  \
         \"method\": \"crates/bench/benches/batch_fresh.rs: {SEGMENTS} flat segments x {ROWS_PER_SEGMENT} rows, dim {DIM}, k={K}, L2; best of {REPS} reps per cell; bit-identity of both paths asserted before timing (bound on and off).\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        cases.join(",\n"),
    );
    write_fresh_json("BENCH_batch.json", &json);
}
