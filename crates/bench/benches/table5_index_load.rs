//! **Table V** — load time of different index types (BH-HNSW, BH-HNSWSQ,
//! BH-IVFPQFS) through the full BlendHouse ingest pipeline.
//!
//! Paper shape: HNSW slowest (graph construction), HNSWSQ faster (quantized
//! distance evaluations during build are cheaper to store), IVFPQFS fastest
//! (k-means + encode only).

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, Timer};
use bh_bench::setup::{build_database, TableOptions};
use blendhouse::DatabaseConfig;

fn main() {
    let mut rows = Vec::new();
    for spec in [DatasetSpec::cohere_sim(), DatasetSpec::openai_sim()] {
        let data = spec.generate();
        let mut cells = vec![spec.name.to_string()];
        let mut times = Vec::new();
        for (label, clause) in [
            ("BH-HNSW", format!("HNSW('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')", data.dim())),
            ("BH-HNSWSQ", format!("HNSWSQ('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')", data.dim())),
            ("BH-IVFPQFS", format!("IVFPQFS('DIM={}')", data.dim())),
        ] {
            let t = Timer::start();
            // Paper-regime segments are large (graph construction dominates);
            // small segments would overweight IVF's per-segment k-means.
            let mut cfg = DatabaseConfig::default();
            cfg.table.segment_max_rows = 8192;
            let db = build_database(
                &data,
                cfg,
                &TableOptions { index_clause: Some(clause), ..Default::default() },
            );
            let secs = t.secs();
            drop(db);
            println!("[table5] {} / {label}: {secs:.2}s", spec.name);
            times.push(secs);
            cells.push(format!("{secs:.2}"));
        }
        // HNSWSQ builds the same graph plus encoding in this reproduction
        // (no int8 SIMD construction kernels — see EXPERIMENTS.md), so only
        // the IVFPQFS-vs-HNSW ordering is asserted.
        assert!(
            times[2] < times[0],
            "IVFPQFS should build faster than HNSW ({:.2} vs {:.2})",
            times[2],
            times[0]
        );
        rows.push(cells);
    }
    print_table(
        "Table V: load time of different index types (seconds)",
        &["dataset", "BH-HNSW", "BH-HNSWSQ", "BH-IVFPQFS"],
        &rows,
    );
}
