//! **Fig. 12** — read/write interference: read QPS under growing write
//! concurrency, mixed VW vs isolated VWs (§V-B3).
//!
//! Compute capacity is modelled explicitly with a slot pool (a VW's cores):
//! in the *mixed* configuration readers and writers contend for one pool; in
//! the *isolated* configuration writers drain a separate pool, so read QPS
//! is flat regardless of write concurrency — the paper's separation claim.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, CpuPool};
use bh_bench::setup::{build_database, TableOptions};
use bh_bench::workloads::vector_search;
use bh_storage::value::Value;
use blendhouse::DatabaseConfig;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SLOTS: usize = 4;
const READERS: usize = 2;
const RUN: Duration = Duration::from_millis(1500);

fn run_config(write_threads: usize, isolated: bool) -> f64 {
    let data = DatasetSpec::cohere_sim().generate();
    let db = Arc::new(build_database(&data, DatabaseConfig::default(), &TableOptions::default()));
    // Writers target their own table so data growth doesn't confound the
    // resource-contention measurement.
    db.execute(
        &format!(
            "CREATE TABLE sink (id UInt64, emb Array(Float32), \
             INDEX ann emb TYPE HNSW('DIM={}'))",
            data.dim()
        ),
    )
    .unwrap();

    let read_pool = Arc::new(CpuPool::new(SLOTS));
    let write_pool = if isolated { Arc::new(CpuPool::new(SLOTS)) } else { read_pool.clone() };

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));
    let queries: Vec<String> = vector_search(&data, 16, 10, 1)
        .iter()
        .map(|q| q.to_sql("bench", "emb"))
        .collect();

    let mut handles = Vec::new();
    for w in 0..write_threads {
        let db = db.clone();
        let pool = write_pool.clone();
        let stop = stop.clone();
        let dim = data.dim();
        handles.push(std::thread::spawn(move || {
            let sink = db.table("sink").unwrap();
            let mut batch_id = w as u64 * 1_000_000;
            while !stop.load(Ordering::Relaxed) {
                let _slot = pool.acquire();
                // One ingest batch = segment write + HNSW build (CPU-heavy).
                let rows: Vec<Vec<Value>> = (0..400)
                    .map(|i| {
                        vec![
                            Value::UInt64(batch_id + i),
                            Value::Vector(vec![(i % 7) as f32; dim]),
                        ]
                    })
                    .collect();
                batch_id += 400;
                let _ = sink.insert_rows(rows);
            }
        }));
    }
    for r in 0..READERS {
        let db = db.clone();
        let pool = read_pool.clone();
        let stop = stop.clone();
        let reads = reads.clone();
        let queries = queries.clone();
        handles.push(std::thread::spawn(move || {
            let mut qi = r;
            while !stop.load(Ordering::Relaxed) {
                let _slot = pool.acquire();
                let _ = db.execute(&queries[qi % queries.len()]);
                reads.fetch_add(1, Ordering::Relaxed);
                qi += 1;
            }
        }));
    }
    let start = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let mut rows = Vec::new();
    let mut mixed_at_zero = 0.0;
    let mut mixed_at_max = 0.0;
    for &writers in &[0usize, 2, 4, 8] {
        let mixed = run_config(writers, false);
        let isolated = run_config(writers, true);
        println!("[fig12] writers={writers}: mixed {mixed:.0} qps | isolated {isolated:.0} qps");
        if writers == 0 {
            mixed_at_zero = mixed;
        }
        if writers == 8 {
            mixed_at_max = mixed;
        }
        rows.push(vec![
            format!("{writers}"),
            format!("{mixed:.0}"),
            format!("{isolated:.0}"),
        ]);
    }
    assert!(
        mixed_at_max < mixed_at_zero * 0.8,
        "write concurrency should depress mixed read QPS ({mixed_at_zero:.0} -> {mixed_at_max:.0})"
    );
    print_table(
        "Fig 12: read QPS vs write concurrency (mixed VW vs isolated VWs)",
        &["write threads", "mixed QPS", "isolated QPS"],
        &rows,
    );
}
