//! Criterion microbenchmarks of the hot kernels that back the cost model's
//! constants: exact distances (`c_d`), ADC lookups (`c_c`), bitmap tests
//! (`c_p`), the top-k collector, the LRU cache, and consistent hashing.
//!
//! These are the numbers `CostParams::calibrate` fits; keeping them under
//! Criterion regression tracking keeps the optimizer's ratios honest.

use bh_cluster::hashring::MultiProbeRing;
use bh_common::{Bitset, TopK, WorkerId};
use bh_storage::lru::LruCache;
use bh_vector::distance::{cosine_distance, dot, l2_sq};
use bh_vector::quant::pq::{CodeBits, Pq, PqParams};
use bh_vector::quant::sq::Sq8;
use bh_vector::Metric;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn vec_of(dim: usize, seed: f32) -> Vec<f32> {
    (0..dim).map(|i| (i as f32 * 0.37 + seed).sin()).collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance");
    for dim in [64usize, 128, 768] {
        let a = vec_of(dim, 0.0);
        let b = vec_of(dim, 1.0);
        g.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bch, _| {
            bch.iter(|| black_box(l2_sq(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bch, _| {
            bch.iter(|| black_box(dot(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bch, _| {
            bch.iter(|| black_box(cosine_distance(black_box(&a), black_box(&b))))
        });
    }
    g.finish();
}

fn bench_quantizers(c: &mut Criterion) {
    let dim = 128;
    let sample: Vec<f32> = (0..512 * dim).map(|i| (i as f32 * 0.01).sin()).collect();
    let q = vec_of(dim, 0.5);

    let sq = Sq8::train(&sample, dim).unwrap();
    let code = sq.encode(&q).unwrap();
    c.bench_function("sq8_asym_l2_128d", |b| {
        b.iter(|| black_box(sq.asym_l2(black_box(&q), black_box(&code))))
    });

    let pq = Pq::train(&sample, dim, Metric::L2, &PqParams::new(32, CodeBits::B8)).unwrap();
    let pcode = pq.encode(&q).unwrap();
    let table = pq.adc_table(&q).unwrap();
    c.bench_function("pq_adc_m32", |b| b.iter(|| black_box(table.distance(black_box(&pcode)))));

    let pq4 = Pq::train(&sample, dim, Metric::L2, &PqParams::new(32, CodeBits::B4)).unwrap();
    let pcode4 = pq4.encode(&q).unwrap();
    let table4 = pq4.adc_table(&q).unwrap();
    c.bench_function("pq_adc_m32_4bit", |b| {
        b.iter(|| black_box(table4.distance(black_box(&pcode4))))
    });
}

fn bench_bitset_and_topk(c: &mut Criterion) {
    let bits = Bitset::from_positions(100_000, (0..100_000).step_by(3));
    c.bench_function("bitset_contains", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(bits.contains(i))
        })
    });

    c.bench_function("topk_push_1000_into_10", |b| {
        b.iter(|| {
            let mut tk = TopK::new(10);
            for i in 0..1000u32 {
                tk.push(((i * 2654435761) % 10007) as f32, i);
            }
            black_box(tk.into_sorted())
        })
    });
}

fn bench_lru_and_ring(c: &mut Criterion) {
    let cache: LruCache<u32, u32> = LruCache::new(10_000);
    for i in 0..1000u32 {
        cache.put(i, i, 7);
    }
    c.bench_function("lru_get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 13) % 1000;
            black_box(cache.get(&i))
        })
    });

    let mut ring = MultiProbeRing::new(21);
    for w in 0..16 {
        ring.add_worker(WorkerId(w));
    }
    let keys: Vec<String> = (0..256).map(|i| format!("seg-{i:016x}")).collect();
    c.bench_function("ring_assign_21probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(ring.assign(&keys[i]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_distances, bench_quantizers, bench_bitset_and_topk, bench_lru_and_ring
}
criterion_main!(benches);
