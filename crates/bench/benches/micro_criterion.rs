//! Criterion microbenchmarks of the hot kernels that back the cost model's
//! constants: exact distances (`c_d`), ADC lookups (`c_c`), bitmap tests
//! (`c_p`), the top-k collector, the LRU cache, and consistent hashing.
//!
//! These are the numbers `CostParams::calibrate` fits; keeping them under
//! Criterion regression tracking keeps the optimizer's ratios honest.

use bh_cluster::hashring::MultiProbeRing;
use bh_common::{Bitset, TopK, WorkerId};
use bh_storage::lru::LruCache;
use bh_vector::distance::{self, cosine_distance, distance_batch, dot, l2_sq};
use bh_vector::quant::pq::{CodeBits, Pq, PqParams};
use bh_vector::quant::sq::Sq8;
use bh_vector::Metric;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn vec_of(dim: usize, seed: f32) -> Vec<f32> {
    (0..dim).map(|i| (i as f32 * 0.37 + seed).sin()).collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance");
    for dim in [64usize, 128, 768] {
        let a = vec_of(dim, 0.0);
        let b = vec_of(dim, 1.0);
        g.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bch, _| {
            bch.iter(|| black_box(l2_sq(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bch, _| {
            bch.iter(|| black_box(dot(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bch, _| {
            bch.iter(|| black_box(cosine_distance(black_box(&a), black_box(&b))))
        });
    }
    g.finish();
}

/// Runtime-dispatched SIMD kernels vs the scalar reference (the acceptance
/// numbers for the kernel-dispatch work: dispatched ≥ 1.5× scalar at
/// dim ≥ 128 on AVX2/NEON machines).
fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    for dim in [64usize, 128, 768, 1536] {
        let a = vec_of(dim, 0.0);
        let b = vec_of(dim, 1.0);
        g.bench_with_input(BenchmarkId::new("l2_scalar", dim), &dim, |bch, _| {
            bch.iter(|| black_box(distance::scalar::l2_sq(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("l2_dispatched", dim), &dim, |bch, _| {
            bch.iter(|| black_box(l2_sq(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("dot_scalar", dim), &dim, |bch, _| {
            bch.iter(|| black_box(distance::scalar::dot(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("dot_dispatched", dim), &dim, |bch, _| {
            bch.iter(|| black_box(dot(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(BenchmarkId::new("cosine_scalar", dim), &dim, |bch, _| {
            bch.iter(|| {
                black_box(distance::scalar::cosine_distance(black_box(&a), black_box(&b)))
            })
        });
        g.bench_with_input(BenchmarkId::new("cosine_dispatched", dim), &dim, |bch, _| {
            bch.iter(|| black_box(cosine_distance(black_box(&a), black_box(&b))))
        });
        // Batched scan of a contiguous 1024-row block.
        let rows = 1024;
        let block: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.001).sin()).collect();
        let mut out = vec![0.0f32; rows];
        g.bench_with_input(BenchmarkId::new("l2_batch_1024rows", dim), &dim, |bch, _| {
            bch.iter(|| {
                distance_batch(Metric::L2, black_box(&a), black_box(&block), dim, &mut out)
                    .unwrap();
                black_box(out[rows - 1])
            })
        });
    }
    g.finish();
}

/// Intra-query segment fan-out: 32 synthetic segments scanned top-k with
/// 1 / 4 / 16 threads, mirroring `exec_vector`'s scoped work-stealing loop.
fn bench_fanout(c: &mut Criterion) {
    let dim = 128;
    let rows = 512;
    let segs = 32;
    let segments: Vec<Vec<f32>> = (0..segs)
        .map(|s| (0..rows * dim).map(|i| ((i + s * 37) as f32 * 0.003).sin()).collect())
        .collect();
    let q = vec_of(dim, 0.5);
    let mut g = c.benchmark_group("fanout_32seg");
    for threads in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, &par| {
            bch.iter(|| {
                let next = std::sync::atomic::AtomicUsize::new(0);
                let per_seg: Vec<Vec<(f32, u64)>> = std::thread::scope(|scope| {
                    let next = &next;
                    let segments = &segments;
                    let q = &q;
                    let handles: Vec<_> = (0..par.min(segs))
                        .map(|_| {
                            scope.spawn(move || {
                                let mut local = Vec::new();
                                loop {
                                    let s =
                                        next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if s >= segs {
                                        break;
                                    }
                                    let mut out = vec![0.0f32; rows];
                                    distance_batch(Metric::L2, q, &segments[s], dim, &mut out)
                                        .unwrap();
                                    let mut tk = TopK::new(10);
                                    for (r, &d) in out.iter().enumerate() {
                                        tk.push(d, r as u64);
                                    }
                                    let hits: Vec<(f32, u64)> = tk
                                        .into_sorted()
                                        .into_iter()
                                        .map(|x| (x.distance, x.item))
                                        .collect();
                                    local.push((s, hits));
                                }
                                local
                            })
                        })
                        .collect();
                    let mut merged: Vec<Vec<(f32, u64)>> = vec![Vec::new(); segs];
                    for h in handles {
                        for (s, hits) in h.join().expect("bench worker") {
                            merged[s] = hits;
                        }
                    }
                    merged
                });
                let mut global = TopK::new(10);
                for (s, hits) in per_seg.iter().enumerate() {
                    for &(d, r) in hits {
                        global.push(d, (s as u64) << 32 | r);
                    }
                }
                black_box(global.into_sorted())
            })
        });
    }
    g.finish();
}

fn bench_quantizers(c: &mut Criterion) {
    let dim = 128;
    let sample: Vec<f32> = (0..512 * dim).map(|i| (i as f32 * 0.01).sin()).collect();
    let q = vec_of(dim, 0.5);

    let sq = Sq8::train(&sample, dim).unwrap();
    let code = sq.encode(&q).unwrap();
    c.bench_function("sq8_asym_l2_128d", |b| {
        b.iter(|| black_box(sq.asym_l2(black_box(&q), black_box(&code))))
    });

    let pq = Pq::train(&sample, dim, Metric::L2, &PqParams::new(32, CodeBits::B8)).unwrap();
    let pcode = pq.encode(&q).unwrap();
    let table = pq.adc_table(&q).unwrap();
    c.bench_function("pq_adc_m32", |b| b.iter(|| black_box(table.distance(black_box(&pcode)))));

    let pq4 = Pq::train(&sample, dim, Metric::L2, &PqParams::new(32, CodeBits::B4)).unwrap();
    let pcode4 = pq4.encode(&q).unwrap();
    let table4 = pq4.adc_table(&q).unwrap();
    c.bench_function("pq_adc_m32_4bit", |b| {
        b.iter(|| black_box(table4.distance(black_box(&pcode4))))
    });
}

fn bench_bitset_and_topk(c: &mut Criterion) {
    let bits = Bitset::from_positions(100_000, (0..100_000).step_by(3));
    c.bench_function("bitset_contains", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(bits.contains(i))
        })
    });

    c.bench_function("topk_push_1000_into_10", |b| {
        b.iter(|| {
            let mut tk = TopK::new(10);
            for i in 0..1000u32 {
                tk.push(((i * 2654435761) % 10007) as f32, i);
            }
            black_box(tk.into_sorted())
        })
    });
}

fn bench_lru_and_ring(c: &mut Criterion) {
    let cache: LruCache<u32, u32> = LruCache::new(10_000);
    for i in 0..1000u32 {
        cache.put(i, i, 7);
    }
    c.bench_function("lru_get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 13) % 1000;
            black_box(cache.get(&i))
        })
    });

    let mut ring = MultiProbeRing::new(21);
    for w in 0..16 {
        ring.add_worker(WorkerId(w));
    }
    let keys: Vec<String> = (0..256).map(|i| format!("seg-{i:016x}")).collect();
    c.bench_function("ring_assign_21probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(ring.assign(&keys[i]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_distances, bench_kernels, bench_fanout, bench_quantizers, bench_bitset_and_topk, bench_lru_and_ring
}
criterion_main!(benches);
