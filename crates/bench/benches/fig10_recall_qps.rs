//! **Fig. 10** — recall-vs-QPS curves of the three systems on pure vector
//! search, produced by sweeping the search beam width (`ef_search`).
//!
//! Paper shape: every system traces the usual concave recall/QPS frontier;
//! BlendHouse sits on or above the baselines across the recall range.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{measure_qps, print_table};
use bh_bench::setup::{build_database, loaded_milvus, loaded_pgvector, recall_of, result_ids, TableOptions};
use bh_bench::workloads::{ground_truth, HybridQuery};
use bh_baselines::BaselineSystem;
use bh_vector::SearchParams;
use blendhouse::DatabaseConfig;
use std::time::Duration;

const K: usize = 10;

fn main() {
    let spec = DatasetSpec::cohere_sim();
    let data = spec.generate();
    let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
    let milvus = loaded_milvus(&data);
    let pg = loaded_pgvector(&data);
    // Hard interpolated queries: perturbed-copy queries saturate recall at
    // tiny beams on clustered data, flattening the frontier the figure is
    // about.
    let queries: Vec<HybridQuery> = data
        .hard_queries(24, 7)
        .into_iter()
        .map(|vector| HybridQuery {
            vector,
            ranges: Vec::new(),
            regex: None,
            similarity_floor: None,
            k: K,
        })
        .collect();
    let truths: Vec<_> = queries.iter().map(|q| ground_truth(&data, q, None)).collect();
    let sqls: Vec<String> = queries.iter().map(|q| q.to_sql("bench", "emb")).collect();

    let mut rows = Vec::new();
    for ef in [8usize, 16, 32, 64, 128, 256] {
        let params = SearchParams::default().with_ef(ef);
        let opts = blendhouse::QueryOptions { search: params, ..db.default_options() };

        let mut qi = 0;
        let bh_qps = measure_qps(24, Duration::from_millis(400), || {
            std::hint::black_box(db.execute_with(&sqls[qi % sqls.len()], &opts).unwrap());
            qi += 1;
        });
        let bh_recall: f64 = queries
            .iter()
            .zip(&truths)
            .map(|(q, t)| {
                let rs = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap().rows();
                recall_of(&result_ids(&rs), t)
            })
            .sum::<f64>()
            / queries.len() as f64;

        let mut cells = vec![format!("{ef}"), format!("{bh_recall:.3}/{bh_qps:.0}")];
        for sys in [&milvus as &dyn BaselineSystem, &pg as &dyn BaselineSystem] {
            let mut qi = 0;
            let qps = measure_qps(24, Duration::from_millis(400), || {
                let q = &queries[qi % queries.len()];
                std::hint::black_box(sys.search(&q.vector, K, &params, None).unwrap());
                qi += 1;
            });
            let recall: f64 = queries
                .iter()
                .zip(&truths)
                .map(|(q, t)| {
                    let ids: Vec<u64> = sys
                        .search(&q.vector, K, &params, None)
                        .unwrap()
                        .iter()
                        .map(|n| n.id)
                        .collect();
                    recall_of(&ids, t)
                })
                .sum::<f64>()
                / queries.len() as f64;
            cells.push(format!("{recall:.3}/{qps:.0}"));
        }
        println!("[fig10] ef={ef}: {}", cells[1..].join(" | "));
        rows.push(cells);
    }
    print_table(
        "Fig 10: recall/QPS by ef_search (format: recall/QPS)",
        &["ef", "BlendHouse", "MilvusSim", "PgvectorSim"],
        &rows,
    );
}
