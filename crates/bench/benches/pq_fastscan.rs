//! PQ fast-scan ADC (DESIGN.md §10): in-register shuffle-LUT scan vs the
//! scalar per-code table ADC at d=128 / m=16 / 4-bit codes, plus the
//! shared-bound skip rate of a two-segment batched IVFPQFS scan.
//!
//! Acceptance shape: the dispatched fast-scan kernel is ≥ 3x the scalar
//! ADC loop per code, top-k recall against exact L2 is unchanged between
//! the two ADC paths (they reconstruct the same quantized distances up to
//! the documented `error_bound`), and the shared bound records a nonzero
//! skip count when the second segment scans under the first segment's
//! published k-th distance.
//!
//! Besides the printed table, results are written to
//! `target/bench-fresh/BENCH_pq.json` in the schema of the committed
//! `BENCH_pq.json`, so `cargo run -p xtask -- bench-diff` can gate latency
//! regressions.

use bh_bench::datasets::DatasetSpec;
use bh_bench::harness::{print_table, Timer};
use bh_common::SharedBound;
use bh_vector::quant::pq::{CodeBits, Pq, PqParams};
use bh_vector::quant::FastScanCodes;
use bh_vector::{IndexKind, IndexRegistry, IndexSpec, Metric, SearchParams, VectorIndex};
use std::hint::black_box;
use std::sync::Arc;

const DIM: usize = 128;
const M: usize = 16;
const N: usize = 8192;
const QUERIES: usize = 16;
const K: usize = 10;

fn exact_topk(data: &[f32], q: &[f32], k: usize) -> Vec<usize> {
    let mut d: Vec<(f32, usize)> = (0..data.len() / DIM)
        .map(|i| (Metric::L2.distance(q, &data[i * DIM..(i + 1) * DIM]), i))
        .collect();
    d.sort_by(|a, b| a.0.total_cmp(&b.0));
    d.truncate(k);
    d.into_iter().map(|(_, i)| i).collect()
}

fn topk_of(dists: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..dists.len()).collect();
    idx.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    idx.truncate(k);
    idx
}

fn overlap(a: &[usize], b: &[usize]) -> f64 {
    a.iter().filter(|x| b.contains(x)).count() as f64 / a.len().max(1) as f64
}

struct ScanTimes {
    scalar_adc_ns: f64,
    blocked_scalar_ns: f64,
    fastscan_ns: f64,
}

/// Median of per-repeat ns/code for the three ADC scan paths.
fn time_scans(
    pq: &Pq,
    packed: &[Vec<u8>],
    fs_codes: &FastScanCodes,
    queries: &[Vec<f32>],
) -> ScanTimes {
    let reps = 9;
    let mut scalar = Vec::new();
    let mut blocked = Vec::new();
    let mut fast = Vec::new();
    let mut out = vec![0.0f32; packed.len()];
    for rep in 0..reps {
        let q = &queries[rep % queries.len()];
        let table = pq.adc_table(q).unwrap();
        let lut = table.quantized().expect("4-bit table must quantize");

        let t = Timer::start();
        for (slot, code) in out.iter_mut().zip(packed) {
            *slot = table.distance(code);
        }
        black_box(&out);
        scalar.push(t.secs() * 1e9 / packed.len() as f64);

        let t = Timer::start();
        lut.scan_scalar(fs_codes, &mut out);
        black_box(&out);
        blocked.push(t.secs() * 1e9 / packed.len() as f64);

        let t = Timer::start();
        lut.scan(fs_codes, &mut out).unwrap();
        black_box(&out);
        fast.push(t.secs() * 1e9 / packed.len() as f64);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    ScanTimes {
        scalar_adc_ns: med(&mut scalar),
        blocked_scalar_ns: med(&mut blocked),
        fastscan_ns: med(&mut fast),
    }
}

/// Two cluster-partitioned IVFPQFS segments scanned under one shared bound
/// — the shape semantic clustering produces, where a query's cluster lives
/// in one segment and the other segment's best candidates are provably far.
/// After each segment the exact (refined) k-th distance is published, as
/// the executor's refine stage does; the other segment's candidates whose
/// margin-adjusted lower bound exceeds it are skipped. Returns
/// `(skips, candidates_emitted)`.
fn shared_bound_skip_rate(
    dataset: &bh_bench::datasets::Dataset,
    queries: &[Vec<f32>],
) -> (u64, u64) {
    let reg = IndexRegistry::with_builtins();
    // Row-range partition of cluster-sorted rows: each segment holds half
    // the clusters, like storage-level semantic clustering.
    let mut order: Vec<usize> = (0..dataset.n()).collect();
    order.sort_by_key(|&i| dataset.cluster_of[i]);
    let build = |rows: &[usize]| -> Arc<dyn VectorIndex> {
        let slice: Vec<f32> =
            rows.iter().flat_map(|&r| dataset.vector(r).iter().copied()).collect();
        let spec = IndexSpec::new(IndexKind::IvfPqFs, DIM, Metric::L2)
            .with_param("nlist", 128)
            .with_param("pq_m", M);
        let mut b = reg.create_builder(&spec).unwrap();
        b.train(&slice).unwrap();
        let ids: Vec<u64> = rows.iter().map(|&r| r as u64).collect();
        b.add_with_ids(&slice, &ids).unwrap();
        b.finish().unwrap()
    };
    let half = order.len() / 2;
    let segments = [build(&order[..half]), build(&order[half..])];
    let params = SearchParams::default().with_nprobe(16);
    let mut skips = 0u64;
    let mut emitted = 0u64;
    for q in queries {
        let b = SharedBound::new();
        for seg in &segments {
            let hits = seg.search_with_bound(q, K, &params, None, Some(&b)).unwrap();
            emitted += hits.len() as u64;
            // Refine contract: exact re-rank of the survivors, then publish
            // the exact k-th (quantized distances are never published).
            let mut exact: Vec<f32> = hits
                .iter()
                .map(|h| Metric::L2.distance(q, dataset.vector(h.id as usize)))
                .collect();
            exact.sort_by(f32::total_cmp);
            if let Some(&kth) = exact.get(K - 1) {
                b.update(kth);
            }
        }
        skips += b.skips();
    }
    (skips, emitted)
}

fn main() {
    // Well-separated Gaussian mixture (the datasets module's standard
    // embedding stand-in): inter-cluster gaps dwarf the PQ reconstruction
    // error, so exact top-k is meaningful and the two ADC paths can be
    // compared on recall rather than on quantization noise.
    let spec =
        DatasetSpec { name: "pq-fastscan-sim", n: N, dim: DIM, clusters: 256, seed: 42 };
    let dataset = spec.generate();
    let data = &dataset.vectors;
    let queries = dataset.queries(QUERIES, 7);

    let pq = Pq::train(&data, DIM, Metric::L2, &PqParams::new(M, CodeBits::B4)).unwrap();
    let packed: Vec<Vec<u8>> =
        (0..N).map(|i| pq.encode(&data[i * DIM..(i + 1) * DIM]).unwrap()).collect();
    let mut fs_codes = FastScanCodes::new(pq.code_size());
    for code in &packed {
        fs_codes.push(code).unwrap();
    }

    // Recall vs exact L2 for both ADC paths, plus top-k agreement between
    // them (acceptance: recall unchanged).
    let mut recall_scalar = 0.0;
    let mut recall_fast = 0.0;
    let mut agreement = 0.0;
    let mut out_scalar = vec![0.0f32; N];
    let mut out_fast = vec![0.0f32; N];
    for q in &queries {
        let table = pq.adc_table(q).unwrap();
        let lut = table.quantized().expect("4-bit table must quantize");
        for (slot, code) in out_scalar.iter_mut().zip(&packed) {
            *slot = table.distance(code);
        }
        lut.scan(&fs_codes, &mut out_fast).unwrap();
        let truth = exact_topk(&data, q, K);
        let top_scalar = topk_of(&out_scalar, K);
        let top_fast = topk_of(&out_fast, K);
        recall_scalar += overlap(&truth, &top_scalar);
        recall_fast += overlap(&truth, &top_fast);
        agreement += overlap(&top_scalar, &top_fast);
    }
    recall_scalar /= QUERIES as f64;
    recall_fast /= QUERIES as f64;
    agreement /= QUERIES as f64;

    let times = time_scans(&pq, &packed, &fs_codes, &queries);
    let speedup = times.scalar_adc_ns / times.fastscan_ns;
    let (skips, scanned) = shared_bound_skip_rate(&dataset, &queries);
    let skip_rate = skips as f64 / scanned.max(1) as f64;

    print_table(
        "PQ fast-scan ADC, d=128 m=16 4-bit (ns per code)",
        &["path", "ns/code", "speedup vs scalar ADC"],
        &[
            vec!["scalar ADC".into(), format!("{:.2}", times.scalar_adc_ns), "1.00".into()],
            vec![
                "blocked scalar".into(),
                format!("{:.2}", times.blocked_scalar_ns),
                format!("{:.2}", times.scalar_adc_ns / times.blocked_scalar_ns),
            ],
            vec![
                "fast-scan (dispatched)".into(),
                format!("{:.2}", times.fastscan_ns),
                format!("{:.2}", speedup),
            ],
        ],
    );
    println!(
        "[pq_fastscan] recall@{K}: scalar ADC {recall_scalar:.3}, fast-scan {recall_fast:.3}, \
         top-k agreement {agreement:.3}"
    );
    println!(
        "[pq_fastscan] shared-bound: {skips} skips / {scanned} emitted candidates \
         ({:.1}% skip rate) across two IVFPQFS segments",
        skip_rate * 100.0
    );

    let json = format!(
        "{{\n  \"benchmark\": \"PQ fast-scan ADC (4-bit in-register shuffle LUT) vs scalar table ADC\",\n  \
         \"cases\": [\n    {{ \"kernel\": \"adc_scan\", \"dim\": {DIM}, \"m\": {M}, \"n\": {N}, \
         \"scalar_adc_ns\": {:.2}, \"blocked_scalar_ns\": {:.2}, \"fastscan_ns\": {:.2}, \
         \"speedup\": {:.2} }}\n  ],\n  \
         \"recall_at_{K}\": {{ \"scalar_adc\": {:.3}, \"fastscan\": {:.3}, \"topk_agreement\": {:.3} }},\n  \
         \"shared_bound\": {{ \"segments\": 2, \"skips\": {skips}, \"candidates_emitted\": {scanned}, \
         \"skip_rate\": {:.4} }}\n}}\n",
        times.scalar_adc_ns,
        times.blocked_scalar_ns,
        times.fastscan_ns,
        speedup,
        recall_scalar,
        recall_fast,
        agreement,
        skip_rate,
    );
    bh_bench::harness::write_fresh_json("BENCH_pq.json", &json);
}
