//! Shared system-construction helpers for the experiment benches.
//!
//! Every bench loads the same universal table shape so workloads are
//! portable across experiments:
//!
//! ```sql
//! CREATE TABLE bench (
//!   id UInt64, x Int64, y Int64, caption String, similarity Float64,
//!   emb Array(Float32), INDEX ann emb TYPE <kind>('DIM=<dim>', …)
//! ) ORDER BY id [PARTITION BY …] [CLUSTER BY emb INTO n BUCKETS]
//! ```

use crate::datasets::Dataset;
use crate::workloads::HybridQuery;
use bh_baselines::{BaselineSystem, MilvusSim, PgvectorSim, SimFilter};
use bh_common::rng::derived_rng;
use bh_storage::value::Value;
use blendhouse::{Database, DatabaseConfig};
use rand::Rng;

/// Declarative knobs for [`build_database`].
#[derive(Debug, Clone, Default)]
pub struct TableOptions {
    /// e.g. `"HNSW('DIM=64', 'M=16')"`; DIM is appended automatically when
    /// `{dim}` placeholder is present.
    pub index_clause: Option<String>,
    /// e.g. `"PARTITION BY pbucket"`.
    pub partition_clause: String,
    /// e.g. `"CLUSTER BY emb INTO 16 BUCKETS"`.
    pub cluster_clause: String,
    /// Add a precomputed scalar partition-bucket column (`pbucket`),
    /// `similarity` decile — used by the partition-strategy experiment.
    pub with_pbucket: bool,
}

/// Second attribute column (`y`) values for a dataset — derived
/// deterministically so ground truth can reproduce them.
pub fn second_attr(data: &Dataset) -> Vec<i64> {
    let mut r = derived_rng(data.spec.seed, 0x5ECD);
    (0..data.n()).map(|_| r.gen_range(0..1_000_000i64)).collect()
}

/// Build a BlendHouse database containing the dataset in table `bench`.
pub fn build_database(data: &Dataset, cfg: DatabaseConfig, topts: &TableOptions) -> Database {
    let db = Database::new(cfg);
    let index = topts
        .index_clause
        .clone()
        .unwrap_or_else(|| format!("HNSW('DIM={}', 'M=16', 'EF_CONSTRUCTION=96')", data.dim()));
    let pbucket_col = if topts.with_pbucket { "pbucket Int64," } else { "" };
    let ddl = format!(
        "CREATE TABLE bench (
           id UInt64, x Int64, y Int64, caption String, similarity Float64, {pbucket_col}
           emb Array(Float32),
           INDEX ann emb TYPE {index}
         ) ORDER BY id {} {}",
        topts.partition_clause, topts.cluster_clause,
    );
    db.execute(&ddl).unwrap_or_else(|e| panic!("DDL failed: {e}\n{ddl}"));
    ingest_dataset(&db, data, topts.with_pbucket);
    db
}

/// Ingest a dataset into the `bench` table in batches.
pub fn ingest_dataset(db: &Database, data: &Dataset, with_pbucket: bool) {
    let table = db.table("bench").expect("created above");
    let ys = second_attr(data);
    let batch = 4096;
    let mut rows = Vec::with_capacity(batch);
    for i in 0..data.n() {
        let mut row = vec![
            Value::UInt64(i as u64),
            Value::Int64(data.rand_int[i]),
            Value::Int64(ys[i]),
            Value::Str(data.captions.get(i).cloned().unwrap_or_default()),
            Value::Float64(data.similarity[i]),
        ];
        if with_pbucket {
            row.push(Value::Int64((data.similarity[i] * 10.0) as i64));
        }
        row.push(Value::Vector(data.vector(i).to_vec()));
        rows.push(row);
        if rows.len() == batch {
            table.insert_rows(std::mem::take(&mut rows)).expect("ingest");
        }
    }
    if !rows.is_empty() {
        table.insert_rows(rows).expect("ingest");
    }
}

/// Load a dataset into a baseline system (x/y/similarity attributes).
pub fn load_baseline(sys: &mut dyn BaselineSystem, data: &Dataset) {
    let ys = second_attr(data);
    let xs: Vec<f64> = data.rand_int.iter().map(|&v| v as f64).collect();
    let ys_f: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
    let sims: Vec<f64> = data.similarity.clone();
    let ids: Vec<u64> = (0..data.n() as u64).collect();
    let batch = 4096;
    let mut start = 0;
    while start < data.n() {
        let end = (start + batch).min(data.n());
        sys.ingest(
            &data.vectors[start * data.dim()..end * data.dim()],
            &ids[start..end],
            &[
                ("x", &xs[start..end]),
                ("y", &ys_f[start..end]),
                ("similarity", &sims[start..end]),
            ],
        )
        .expect("baseline ingest");
        start = end;
    }
}

/// A fresh, fully loaded Milvus stand-in for a dataset.
pub fn loaded_milvus(data: &Dataset) -> MilvusSim {
    let mut m = MilvusSim::with_defaults(data.dim());
    load_baseline(&mut m, data);
    m.finalize().expect("milvus finalize");
    m
}

/// A fresh, fully loaded pgvector stand-in for a dataset.
pub fn loaded_pgvector(data: &Dataset) -> PgvectorSim {
    let mut p = PgvectorSim::with_defaults(data.dim());
    load_baseline(&mut p, data);
    p.finalize().expect("pgvector finalize");
    p
}

/// Convert a workload query to a baseline filter.
pub fn to_sim_filter(q: &HybridQuery) -> Option<SimFilter> {
    let mut f = SimFilter::default();
    for (col, lo, hi) in &q.ranges {
        f = f.and(col, *lo as f64, *hi as f64);
    }
    if let Some(floor) = q.similarity_floor {
        f = f.and("similarity", floor, 1.0);
    }
    // Regex filters are not supported by the baseline collection model; the
    // experiments that use them run on BlendHouse only.
    if f.ranges.is_empty() {
        None
    } else {
        Some(f)
    }
}

/// Recall of returned ids against exact ground-truth rows.
pub fn recall_of(ids: &[u64], truth: &[(usize, f32)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let want: std::collections::HashSet<u64> = truth.iter().map(|&(r, _)| r as u64).collect();
    ids.iter().filter(|id| want.contains(id)).count() as f64 / want.len() as f64
}

/// Extract ids from a BlendHouse result set (expects an `id` column).
pub fn result_ids(rs: &blendhouse::ResultSet) -> Vec<u64> {
    rs.column_values("id")
        .expect("id column")
        .into_iter()
        .map(|v| match v {
            Value::UInt64(x) => x,
            other => panic!("unexpected id value {other}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::workloads::{filtered_search, ground_truth, vector_search};
    use bh_vector::SearchParams;

    #[test]
    fn database_setup_answers_queries() {
        let data = DatasetSpec::tiny().generate();
        let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
        let q = &vector_search(&data, 1, 5, 0)[0];
        let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
        assert_eq!(rs.len(), 5);
        let truth = ground_truth(&data, q, None);
        let r = recall_of(&result_ids(&rs), &truth);
        assert!(r >= 0.8, "recall {r}");
    }

    #[test]
    fn hybrid_queries_with_second_attr_match_ground_truth() {
        let data = DatasetSpec::tiny().generate();
        let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
        let ys = second_attr(&data);
        let mut q = filtered_search(&data, 1, 5, 0.5, 0)[0].clone();
        q.ranges.push(("y".to_string(), 0, 500_000));
        let rs = db.execute(&q.to_sql("bench", "emb")).unwrap().rows();
        let truth = ground_truth(&data, &q, Some(&ys));
        let r = recall_of(&result_ids(&rs), &truth);
        assert!(r >= 0.7, "recall {r}");
    }

    #[test]
    fn baselines_load_and_search() {
        let data = DatasetSpec::tiny().generate();
        let m = loaded_milvus(&data);
        let p = loaded_pgvector(&data);
        assert_eq!(m.len(), data.n());
        assert_eq!(p.len(), data.n());
        let q = &vector_search(&data, 1, 5, 0)[0];
        let truth = ground_truth(&data, q, None);
        for sys in [&m as &dyn BaselineSystem, &p as &dyn BaselineSystem] {
            let hits = sys
                .search(&q.vector, 5, &SearchParams::default().with_ef(64), None)
                .unwrap();
            let ids: Vec<u64> = hits.iter().map(|n| n.id).collect();
            let r = recall_of(&ids, &truth);
            assert!(r >= 0.8, "{}: recall {r}", sys.name());
        }
    }

    #[test]
    fn sim_filter_conversion() {
        let data = DatasetSpec::tiny().generate();
        let q = &filtered_search(&data, 1, 5, 0.2, 0)[0];
        let f = to_sim_filter(q).unwrap();
        assert_eq!(f.ranges.len(), 1);
        let pure = &vector_search(&data, 1, 5, 0)[0];
        assert!(to_sim_filter(pure).is_none());
    }
}

#[cfg(test)]
mod profile {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::workloads::production_search;
    use blendhouse::{DatabaseConfig, QueryOptions, Strategy};
    use std::time::Instant;

    /// Scratch profiling probe (run with `--release --ignored -- --nocapture`).
    #[test]
    #[ignore]
    fn profile_production_query() {
        let data = DatasetSpec::production_sim().generate();
        let db = build_database(&data, DatabaseConfig::default(), &TableOptions::default());
        let queries = production_search(&data, 8, 100, 9);
        let params = bh_vector::SearchParams::default().with_ef(256);
        for strategy in [None, Some(Strategy::BruteForce), Some(Strategy::PreFilter), Some(Strategy::PostFilter), Some(Strategy::FilteredTraversal)] {
            let opts = QueryOptions { search: params, forced_strategy: strategy, ..db.default_options() };
            // warm
            for q in &queries { let _ = db.execute_with(&q.to_sql("bench", "emb"), &opts); }
            let t = Instant::now();
            for _ in 0..4 {
                for q in &queries {
                    let _ = db.execute_with(&q.to_sql("bench", "emb"), &opts).unwrap();
                }
            }
            let per = t.elapsed() / (4 * queries.len() as u32);
            let m = db.metrics();
            println!("strategy {strategy:?}: {per:?}/query  plan_ns={} exec_ns={} bf={} local={}",
                m.counter_value("query.plan_ns"), m.counter_value("query.exec_ns"),
                m.counter_value("worker.brute_force"), m.counter_value("worker.local_search"));
        }
    }
}
