//! Workload generators mirroring §V-A.
//!
//! * **VectorBench-style**: pure top-k vector search, and hybrid queries
//!   combining the search with a range filter over the random-int column at
//!   a controlled pass fraction. The paper's "1% selectivity" workload
//!   filters out 1% (pass fraction 0.99); its "99% selectivity" workload
//!   filters out 99% (pass fraction 0.01) — we name by pass fraction to
//!   avoid the ambiguity.
//! * **LAION-style**: multi-predicate queries — a regex over captions plus a
//!   range over the caption-image similarity column (threshold ≥ 0.3, per
//!   the LAION team's guidance quoted in the paper) plus vector search.
//! * **Production-style**: top-k with conjunctive ranges over several
//!   scalar columns, like the image-search service.

use crate::datasets::Dataset;
use bh_common::rng::derived_rng;
use rand::Rng;

/// One hybrid query: a vector plus optional scalar conditions (expressed
/// both as SQL fragments for BlendHouse and as raw ranges for baselines).
#[derive(Debug, Clone)]
pub struct HybridQuery {
    /// The query embedding.
    pub vector: Vec<f32>,
    /// `(column, lo, hi)` inclusive ranges.
    pub ranges: Vec<(String, i64, i64)>,
    /// Regex over the caption column, if any.
    pub regex: Option<String>,
    /// Similarity-score lower bound, if any.
    pub similarity_floor: Option<f64>,
    /// Requested result count.
    pub k: usize,
}

impl HybridQuery {
    /// Render the WHERE clause (empty string when unconditioned).
    pub fn where_sql(&self) -> String {
        let mut parts = Vec::new();
        for (c, lo, hi) in &self.ranges {
            parts.push(format!("{c} BETWEEN {lo} AND {hi}"));
        }
        if let Some(re) = &self.regex {
            parts.push(format!("caption REGEXP '{re}'"));
        }
        if let Some(floor) = self.similarity_floor {
            parts.push(format!("similarity >= {floor}"));
        }
        parts.join(" AND ")
    }

    /// Full SELECT against a BlendHouse table with columns
    /// `(id, …, emb)` and a distance alias.
    pub fn to_sql(&self, table: &str, vector_col: &str) -> String {
        let vec_lit: Vec<String> = self.vector.iter().map(|v| format!("{v}")).collect();
        let where_clause = {
            let w = self.where_sql();
            if w.is_empty() {
                String::new()
            } else {
                format!("WHERE {w} ")
            }
        };
        format!(
            "SELECT id, dist FROM {table} {where_clause}ORDER BY L2Distance({vector_col}, [{}]) AS dist LIMIT {}",
            vec_lit.join(", "),
            self.k
        )
    }
}

/// Pure top-k vector search queries.
pub fn vector_search(data: &Dataset, count: usize, k: usize, seed: u64) -> Vec<HybridQuery> {
    data.queries(count, seed)
        .into_iter()
        .map(|vector| HybridQuery {
            vector,
            ranges: Vec::new(),
            regex: None,
            similarity_floor: None,
            k,
        })
        .collect()
}

/// Hybrid queries whose random-int range passes ~`pass_fraction` of rows.
/// The attribute is uniform on `[0, 1_000_000)`, so a window of
/// `pass_fraction · 1e6` gives the desired selectivity.
pub fn filtered_search(
    data: &Dataset,
    count: usize,
    k: usize,
    pass_fraction: f64,
    seed: u64,
) -> Vec<HybridQuery> {
    let mut r = derived_rng(data.spec.seed, 0xF117E12 ^ seed);
    let width = ((1_000_000.0 * pass_fraction) as i64).clamp(1, 1_000_000);
    data.queries(count, seed)
        .into_iter()
        .map(|vector| {
            let lo = r.gen_range(0..=(1_000_000 - width));
            HybridQuery {
                vector,
                ranges: vec![("x".to_string(), lo, lo + width - 1)],
                regex: None,
                similarity_floor: None,
                k,
            }
        })
        .collect()
}

/// LAION-style multi-predicate queries (§V-A3): regex over captions built
/// from 2–10 random tokens, similarity floor at 0.3..1.0, plus the vector.
pub fn laion_search(data: &Dataset, count: usize, k: usize, seed: u64) -> Vec<HybridQuery> {
    let mut r = derived_rng(data.spec.seed, 0x1A10 ^ seed);
    let tokens = ["^[a-m]", "ing", "o", "a.", "e+", "[0-9]", "^s", "t.?r", "an", "c"];
    data.queries(count, seed)
        .into_iter()
        .map(|vector| {
            let t = &tokens[r.gen_range(0..tokens.len())];
            let floor: f64 = r.gen_range(0.3..0.7);
            HybridQuery {
                vector,
                ranges: Vec::new(),
                regex: Some(t.to_string()),
                similarity_floor: Some((floor * 100.0).round() / 100.0),
                k,
            }
        })
        .collect()
}

/// Production-style queries: conjunctive ranges over several columns plus a
/// large top-k (the paper uses top-1000 on 30M rows; scaled here).
pub fn production_search(data: &Dataset, count: usize, k: usize, seed: u64) -> Vec<HybridQuery> {
    let mut r = derived_rng(data.spec.seed, 0x9180D ^ seed);
    data.queries(count, seed)
        .into_iter()
        .map(|vector| {
            // Two selective ranges: each passes ~35%, joint ~12% — the
            // multi-column filters of the production image-search service.
            let lo1 = r.gen_range(0..650_000i64);
            let lo2 = r.gen_range(0..650_000i64);
            HybridQuery {
                vector,
                ranges: vec![
                    ("x".to_string(), lo1, lo1 + 350_000),
                    ("y".to_string(), lo2, lo2 + 350_000),
                ],
                regex: None,
                similarity_floor: None,
                k,
            }
        })
        .collect()
}

/// Exact ground truth for one query over a dataset (`(row, distance)`
/// ascending) with the query's own scalar conditions applied.
pub fn ground_truth(
    data: &Dataset,
    q: &HybridQuery,
    second_attr: Option<&[i64]>,
) -> Vec<(usize, f32)> {
    let mut hits: Vec<(usize, f32)> = (0..data.n())
        .filter(|&row| {
            q.ranges.iter().all(|(col, lo, hi)| {
                let v = match col.as_str() {
                    "x" => data.rand_int[row],
                    "y" => second_attr.map(|a| a[row]).unwrap_or(0),
                    _ => return false,
                };
                v >= *lo && v <= *hi
            }) && q
                .similarity_floor
                .map(|f| data.similarity[row] >= f)
                .unwrap_or(true)
                && q.regex
                    .as_ref()
                    .map(|re| {
                        bh_common::regex_lite::Regex::new(re)
                            .map(|r| r.is_match(&data.captions[row]))
                            .unwrap_or(false)
                    })
                    .unwrap_or(true)
        })
        .map(|row| (row, bh_vector::distance::l2_sq(&q.vector, data.vector(row))))
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1));
    hits.truncate(q.k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    #[test]
    fn filtered_pass_fraction_is_controlled() {
        let d = DatasetSpec::tiny().generate();
        let qs = filtered_search(&d, 20, 5, 0.5, 0);
        for q in &qs {
            let (_, lo, hi) = &q.ranges[0];
            let passing =
                d.rand_int.iter().filter(|&&v| v >= *lo && v <= *hi).count() as f64 / d.n() as f64;
            assert!((passing - 0.5).abs() < 0.15, "pass fraction {passing}");
        }
    }

    #[test]
    fn sql_rendering() {
        let d = DatasetSpec::tiny().generate();
        let q = &filtered_search(&d, 1, 7, 0.1, 0)[0];
        let sql = q.to_sql("t", "emb");
        assert!(sql.contains("WHERE x BETWEEN"));
        assert!(sql.contains("LIMIT 7"));
        assert!(sql.contains("L2Distance(emb, ["));
        // Pure vector query has no WHERE.
        let v = &vector_search(&d, 1, 3, 0)[0];
        assert!(!v.to_sql("t", "emb").contains("WHERE"));
    }

    #[test]
    fn laion_queries_have_regex_and_floor() {
        let d = DatasetSpec::tiny().generate().with_captions();
        let qs = laion_search(&d, 10, 5, 0);
        for q in &qs {
            assert!(q.regex.is_some());
            let f = q.similarity_floor.unwrap();
            assert!((0.3..0.71).contains(&f));
            assert!(q.where_sql().contains("REGEXP"));
        }
    }

    #[test]
    fn ground_truth_respects_filters() {
        let d = DatasetSpec::tiny().generate().with_captions();
        let q = &filtered_search(&d, 1, 10, 0.3, 0)[0];
        let truth = ground_truth(&d, q, None);
        assert!(!truth.is_empty());
        let (_, lo, hi) = &q.ranges[0];
        for &(row, _) in &truth {
            assert!(d.rand_int[row] >= *lo && d.rand_int[row] <= *hi);
        }
        // Ascending distances.
        for w in truth.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn production_queries_filter_two_columns() {
        let d = DatasetSpec::tiny().generate();
        let qs = production_search(&d, 5, 100, 0);
        for q in &qs {
            assert_eq!(q.ranges.len(), 2);
            assert!(q.where_sql().contains("x BETWEEN") && q.where_sql().contains("y BETWEEN"));
        }
    }
}
