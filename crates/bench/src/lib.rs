//! # bh-bench — the evaluation harness
//!
//! Reproduces every table and figure of the paper's §V as `harness = false`
//! bench targets (`cargo bench --workspace` regenerates the full
//! evaluation). Supporting machinery:
//!
//! * [`datasets`] — synthetic stand-ins for Cohere / OpenAI / LAION /
//!   production data at laptop scale (Gaussian-mixture embeddings with
//!   genuine cluster structure, captions, similarity scores). Scale factors
//!   are documented per-experiment in EXPERIMENTS.md; set `BH_BENCH_SCALE`
//!   to grow them.
//! * [`workloads`] — VectorBench-style query generators: pure top-k,
//!   filtered search at a chosen pass-fraction, LAION-style multi-predicate
//!   queries with regex, production-style multi-column queries.
//! * [`harness`] — QPS/latency/recall measurement, ef-for-recall tuning, a
//!   capacity-modelling CPU pool for the interference experiment, and
//!   aligned table printing so each bench emits the same rows/series as the
//!   paper artifact it reproduces.

pub mod datasets;
pub mod harness;
pub mod setup;
pub mod workloads;

pub use datasets::{Dataset, DatasetSpec};
pub use harness::{measure_qps, print_table, CpuPool, Timer};
