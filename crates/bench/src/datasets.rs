//! Synthetic dataset generation.
//!
//! The paper evaluates on Cohere (1M×768), OpenAI (5M×1536), LAION
//! (1M×512) and a 30M-row production sample — none of which are available
//! offline. Real embedding collections are *clustered*: that geometry is
//! what recall/QPS trade-offs, semantic partitioning, and IVF cell pruning
//! all depend on. We therefore substitute Gaussian mixtures with per-cluster
//! anisotropy, scaled down (documented in EXPERIMENTS.md) but preserving the
//! cluster structure; the LAION stand-in adds caption strings and a
//! caption-image similarity column, and the production stand-in adds the
//! multi-column attributes its workload filters on.

use bh_common::rng::{derived_rng, rng, DetRng};
use rand::Rng;

/// Scale multiplier from the environment (`BH_BENCH_SCALE`, default 1.0).
pub fn env_scale() -> f64 {
    std::env::var("BH_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset label used in printed tables.
    pub name: &'static str,
    /// Number of rows.
    pub n: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Gaussian-mixture component count.
    pub clusters: usize,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Stand-in for Cohere wikipedia-22-12 (paper: 1M × 768).
    pub fn cohere_sim() -> Self {
        let s = env_scale();
        Self { name: "cohere-sim", n: (20_000.0 * s) as usize, dim: 64, clusters: 32, seed: 11 }
    }

    /// Stand-in for OpenAI/C4 (paper: 5M × 1536) — kept ~2.5x cohere-sim in
    /// rows and 1.5x in dim so the relative gap between datasets survives.
    pub fn openai_sim() -> Self {
        let s = env_scale();
        Self { name: "openai-sim", n: (50_000.0 * s) as usize, dim: 96, clusters: 48, seed: 13 }
    }

    /// Stand-in for LAION-400M sample (paper: 1M × 512, captions + scores).
    pub fn laion_sim() -> Self {
        let s = env_scale();
        Self { name: "laion-sim", n: (16_000.0 * s) as usize, dim: 32, clusters: 24, seed: 17 }
    }

    /// Stand-in for the production image-search sample (paper: 30M rows).
    pub fn production_sim() -> Self {
        let s = env_scale();
        Self { name: "production-sim", n: (30_000.0 * s) as usize, dim: 48, clusters: 40, seed: 19 }
    }

    /// A small spec for tests.
    pub fn tiny() -> Self {
        Self { name: "tiny", n: 500, dim: 8, clusters: 4, seed: 1 }
    }

    /// Materialize the dataset.
    pub fn generate(&self) -> Dataset {
        Dataset::generate(self)
    }
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generating specification.
    pub spec: DatasetSpec,
    /// Row-major embeddings, `n × dim`.
    pub vectors: Vec<f32>,
    /// Cluster id of each row (ground-truth structure).
    pub cluster_of: Vec<u32>,
    /// Uniform-random integer attribute in `[0, 1_000_000)` (VectorBench's
    /// "random int" column) — selectivity-controllable via ranges.
    pub rand_int: Vec<i64>,
    /// LAION-style caption (empty unless generated via `with_captions`).
    pub captions: Vec<String>,
    /// LAION-style caption-image similarity in `[0, 1)`.
    pub similarity: Vec<f64>,
}

impl Dataset {
    /// Materialize a dataset from its specification.
    pub fn generate(spec: &DatasetSpec) -> Dataset {
        let mut r = rng(spec.seed);
        // Cluster centers on a scaled hypercube lattice with jitter.
        let centers: Vec<Vec<f32>> = (0..spec.clusters)
            .map(|c| {
                let mut cr = derived_rng(spec.seed, 1000 + c as u64);
                (0..spec.dim)
                    .map(|_| cr.gen_range(-1.0f32..1.0) * 10.0)
                    .collect()
            })
            .collect();
        let mut vectors = Vec::with_capacity(spec.n * spec.dim);
        let mut cluster_of = Vec::with_capacity(spec.n);
        let mut rand_int = Vec::with_capacity(spec.n);
        let mut similarity = Vec::with_capacity(spec.n);
        for _ in 0..spec.n {
            let c = r.gen_range(0..spec.clusters);
            cluster_of.push(c as u32);
            let center = &centers[c];
            for d in 0..spec.dim {
                // Anisotropic noise: later dimensions are tighter, like the
                // decaying spectrum of real embeddings.
                let sigma = 1.0 / (1.0 + d as f32 * 0.05);
                vectors.push(center[d] + r.gen_range(-sigma..sigma));
            }
            rand_int.push(r.gen_range(0..1_000_000i64));
            similarity.push(r.gen_range(0.0..1.0f64));
        }
        Dataset {
            spec: spec.clone(),
            vectors,
            cluster_of,
            rand_int,
            captions: Vec::new(),
            similarity,
        }
    }

    /// Add LAION-style captions (needed only by the laion-sim experiments).
    pub fn with_captions(mut self) -> Dataset {
        let mut r = derived_rng(self.spec.seed, 0xCAFE);
        self.captions = (0..self.spec.n).map(|i| caption(&mut r, self.cluster_of[i])).collect();
        self
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.spec.n
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.spec.dim
    }

    /// Embedding of one row.
    pub fn vector(&self, row: usize) -> &[f32] {
        &self.vectors[row * self.spec.dim..(row + 1) * self.spec.dim]
    }

    /// Query vectors: perturbed copies of random data points (the standard
    /// benchmark recipe — queries share the data distribution).
    pub fn queries(&self, count: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut r = derived_rng(self.spec.seed, 0x9E37 ^ seed);
        (0..count)
            .map(|_| {
                let row = r.gen_range(0..self.spec.n);
                self.vector(row)
                    .iter()
                    .map(|&v| v + r.gen_range(-0.05f32..0.05))
                    .collect()
            })
            .collect()
    }

    /// Hard query vectors for recall-frontier experiments: interpolations
    /// between two random data points, so the true top-k straddles regions
    /// and small search beams genuinely miss neighbors (a perturbed-copy
    /// query has one overwhelming nearest neighbor and saturates recall).
    pub fn hard_queries(&self, count: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut r = derived_rng(self.spec.seed, 0x4A2D ^ seed);
        (0..count)
            .map(|_| {
                let a = r.gen_range(0..self.spec.n);
                let b = r.gen_range(0..self.spec.n);
                let t: f32 = r.gen_range(0.35..0.65);
                self.vector(a)
                    .iter()
                    .zip(self.vector(b))
                    .map(|(&x, &y)| x * (1.0 - t) + y * t + r.gen_range(-0.1f32..0.1))
                    .collect()
            })
            .collect()
    }
}

const WORDS: &[&str] = &[
    "sunset", "mountain", "river", "portrait", "city", "night", "forest", "beach", "dog", "cat",
    "vintage", "abstract", "watercolor", "sketch", "aerial", "macro", "street", "bridge",
    "garden", "snow", "3d", "render", "oil", "painting", "photo",
];

fn caption(r: &mut DetRng, cluster: u32) -> String {
    let n_words = r.gen_range(3..8);
    let mut out = String::new();
    // Cluster-correlated leading word so regex filters correlate with
    // semantics, as image captions do.
    out.push_str(WORDS[cluster as usize % WORDS.len()]);
    for _ in 0..n_words {
        out.push(' ');
        out.push_str(WORDS[r.gen_range(0..WORDS.len())]);
    }
    if r.gen_bool(0.3) {
        out.push_str(&format!(" {}", r.gen_range(1900..2025)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_vector::distance::l2_sq;

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::tiny().generate();
        let b = DatasetSpec::tiny().generate();
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.rand_int, b.rand_int);
    }

    #[test]
    fn clusters_are_coherent() {
        let d = DatasetSpec::tiny().generate();
        // Same-cluster rows are closer on average than cross-cluster rows.
        let mut same = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..100 {
            for j in i + 1..100 {
                let dist = l2_sq(d.vector(i), d.vector(j)) as f64;
                if d.cluster_of[i] == d.cluster_of[j] {
                    same = (same.0 + dist, same.1 + 1);
                } else {
                    cross = (cross.0 + dist, cross.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1.max(1) as f64;
        let cross_avg = cross.0 / cross.1.max(1) as f64;
        assert!(
            same_avg * 3.0 < cross_avg,
            "cluster structure too weak: same {same_avg:.2} vs cross {cross_avg:.2}"
        );
    }

    #[test]
    fn captions_and_attributes() {
        let d = DatasetSpec::tiny().generate().with_captions();
        assert_eq!(d.captions.len(), d.n());
        assert!(d.captions.iter().all(|c| !c.is_empty()));
        assert!(d.rand_int.iter().all(|&v| (0..1_000_000).contains(&v)));
        assert!(d.similarity.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn queries_are_near_data() {
        let d = DatasetSpec::tiny().generate();
        let qs = d.queries(10, 0);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert_eq!(q.len(), d.dim());
            // Each query should be very close to at least one data point.
            let min = (0..d.n())
                .map(|i| l2_sq(q, d.vector(i)))
                .fold(f32::INFINITY, f32::min);
            assert!(min < 1.0, "query too far from data: {min}");
        }
    }

    #[test]
    fn spec_presets_scale_sanely() {
        let c = DatasetSpec::cohere_sim();
        let o = DatasetSpec::openai_sim();
        assert!(o.n > c.n);
        assert!(o.dim > c.dim);
    }
}
