//! Measurement utilities shared by all experiment benches.

use bh_common::sync::{classes, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wall-clock timer.
pub struct Timer(Instant);

impl Timer {
    /// Start timing now.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed seconds since start.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

/// Run `f` once per iteration for at least `min_iters` iterations and at
/// least `min_time`; returns queries per second.
pub fn measure_qps(min_iters: usize, min_time: Duration, mut f: impl FnMut()) -> f64 {
    // Warm-up round.
    f();
    let start = Instant::now();
    let mut iters = 0usize;
    while iters < min_iters || start.elapsed() < min_time {
        f();
        iters += 1;
        if iters > 5_000_000 {
            break;
        }
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Mean latency of `f` over `iters` runs.
pub fn measure_latency(iters: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

/// Print an aligned table with a title (the per-figure/table output format).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// A counted capacity pool modelling a VW's compute slots. Readers and
/// writers that share one pool contend (the mixed-workload configuration);
/// separate pools are isolated VWs. This turns the interference experiment
/// into a deterministic capacity argument instead of an OS-scheduler race.
pub struct CpuPool {
    state: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
}

impl CpuPool {
    /// A pool with the given number of slots.
    pub fn new(slots: usize) -> CpuPool {
        CpuPool { state: Mutex::new(&classes::BENCH_CPUPOOL, slots), cv: Condvar::new(), capacity: slots }
    }

    /// Configured slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire one slot, blocking until available.
    pub fn acquire(&self) -> CpuSlot<'_> {
        let mut free = self.state.lock();
        while *free == 0 {
            self.cv.wait(&mut free);
        }
        *free -= 1;
        CpuSlot { pool: self }
    }
}

/// RAII guard for one pool slot.
pub struct CpuSlot<'a> {
    pool: &'a CpuPool,
}

impl Drop for CpuSlot<'_> {
    fn drop(&mut self) {
        let mut free = self.pool.state.lock();
        *free += 1;
        self.pool.cv.notify_one();
    }
}

/// Write a fresh benchmark JSON file to `<workspace>/target/bench-fresh/`,
/// where `cargo xtask bench-diff` picks it up and compares it against the
/// committed copy at the workspace root. `name` is the full file name, e.g.
/// `"BENCH_pq.json"`. Failures are reported but never panic: emitting the
/// file is a side product of the printed results, not the benchmark itself.
pub fn write_fresh_json(name: &str, json: &str) {
    // Anchor at the workspace root (bench binaries run with the package
    // directory as cwd).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| std::path::Path::new("."))
        .join("target")
        .join("bench-fresh");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(name);
        match std::fs::write(&path, json) {
            Ok(()) => println!("[bench] wrote {}", path.display()),
            Err(e) => eprintln!("[bench] could not write {}: {e}", path.display()),
        }
    }
}

/// Format a `Duration` in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn qps_measures_something_positive() {
        let qps = measure_qps(10, Duration::from_millis(1), || {
            std::hint::black_box(1 + 1);
        });
        assert!(qps > 0.0);
    }

    #[test]
    fn latency_is_positive() {
        let lat = measure_latency(5, || {
            std::thread::sleep(Duration::from_micros(100));
        });
        assert!(lat >= Duration::from_micros(80));
    }

    #[test]
    fn pool_limits_concurrency() {
        let pool = Arc::new(CpuPool::new(2));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let pool = pool.clone();
            let active = active.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _slot = pool.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool over-admitted");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
