//! Quickstart: the Example-1 flow from the paper, end to end.
//!
//! Creates a table with a vector index, scalar partitioning and semantic
//! clustering, ingests rows, and runs hybrid queries combining filters with
//! nearest-neighbor search — all through SQL.
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin quickstart`

use blendhouse::{Database, QueryOutput};

fn main() {
    let db = Database::in_memory();

    // 1. DDL — Example 1 of the paper (dimensions scaled down).
    db.execute(
        "CREATE TABLE images (
           id UInt64,
           label String,
           published_time DateTime,
           embedding Array(Float32),
           INDEX ann_idx embedding TYPE HNSW('DIM=8', 'M=16')
         )
         ORDER BY published_time
         PARTITION BY label
         CLUSTER BY embedding INTO 4 BUCKETS",
    )
    .expect("create table");
    println!("created table `images`");

    // 2. Ingest: partitioning and per-segment index building are automatic.
    let mut values = Vec::new();
    for i in 0..2_000u64 {
        let label = if i % 3 == 0 { "animal" } else { "landscape" };
        let c = (i % 5) as f32 * 4.0; // five semantic clusters
        let embedding: Vec<String> =
            (0..8).map(|d| format!("{}", c + (d as f32) * 0.01)).collect();
        values.push(format!(
            "({i}, '{label}', {}, [{}])",
            1_700_000_000 + i * 60,
            embedding.join(", ")
        ));
    }
    let QueryOutput::Affected(n) =
        db.execute(&format!("INSERT INTO images VALUES {}", values.join(", "))).expect("insert")
    else {
        unreachable!()
    };
    println!("inserted {n} rows");
    let table = db.table("images").unwrap();
    println!(
        "storage: {} segments, {} visible rows, semantic clusterer trained: {}",
        table.segment_count(),
        table.visible_rows(),
        table.clusterer().is_some()
    );

    // 3. A hybrid query: filter + nearest-neighbor + top-k in one statement.
    let sql = "SELECT id, label, dist FROM images
               WHERE label = 'animal' AND published_time >= '2023-11-14 00:00:00'
               ORDER BY L2Distance(embedding, [8.0, 8.01, 8.02, 8.03, 8.04, 8.05, 8.06, 8.07]) AS dist
               LIMIT 5";
    let rows = db.execute(sql).expect("hybrid query").rows();
    println!("\nhybrid query results (nearest 'animal' rows to cluster 2):");
    print!("{}", rows.to_table_string());

    // 4. A distance-range query (SearchWithRange through SQL).
    let rows = db
        .execute(
            "SELECT id, dist FROM images
             WHERE L2Distance(embedding, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]) < 1.0
             ORDER BY L2Distance(embedding, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]) AS dist
             LIMIT 1000",
        )
        .expect("range query")
        .rows();
    println!("range query found {} rows within distance 1.0", rows.len());

    // 5. Real-time update: new version + delete bitmap, then compaction.
    db.execute("UPDATE images SET label = 'retired' WHERE id < 100").expect("update");
    let report = db.compact("images").expect("compact");
    println!(
        "after update + compaction: merged {} segments, dropped {} dead rows",
        report.merged_segments, report.rows_dropped
    );

    let rows = db
        .execute("SELECT id FROM images WHERE label = 'retired' LIMIT 200")
        .expect("select")
        .rows();
    assert_eq!(rows.len(), 100);
    println!("updated rows visible under their new label: {}", rows.len());
}
