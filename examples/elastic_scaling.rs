//! Elastic scaling walk-through: the disaggregated-architecture features of
//! §II — stateless virtual warehouses, multi-probe consistent hashing,
//! cache-aware preload, vector search serving on scale-up, and query-level
//! retry on worker failure.
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin elastic_scaling`

use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::{build_database, TableOptions};
use blendhouse::DatabaseConfig;

fn main() {
    let data = DatasetSpec::tiny().generate();
    let mut cfg = DatabaseConfig { default_workers: 1, ..Default::default() };
    cfg.table.segment_max_rows = 64; // many segments → visible redistribution
    let db = build_database(&data, cfg, &TableOptions::default());
    let table = db.table("bench").unwrap();
    let vw = db.default_vw();
    println!(
        "table has {} segments; VW starts with {} worker",
        table.segment_count(),
        vw.worker_count()
    );

    // Cache-aware preload: indexes land on the workers the hash ring maps
    // them to — the same mapping queries will use.
    let loaded = db.preload("bench", "default").unwrap();
    println!("preloaded {loaded} per-segment indexes");

    let sql = {
        let q: Vec<String> = data.queries(1, 3)[0].iter().map(|v| v.to_string()).collect();
        format!(
            "SELECT id, dist FROM bench ORDER BY L2Distance(emb, [{}]) AS dist LIMIT 5",
            q.join(", ")
        )
    };
    let baseline = db.execute(&sql).unwrap().rows();
    println!("query over 1 worker returns {} rows", baseline.len());

    // Scale out. Passing the segment list lets the VW remember previous
    // owners, so moved segments are served via RPC instead of brute force.
    let segments = table.segments();
    for _ in 0..3 {
        vw.scale_up(&segments);
    }
    println!("scaled to {} workers", vw.worker_count());
    let assignment = vw.assign(&segments);
    for (wid, segs) in &assignment {
        println!("  {wid}: {} segments", segs.len());
    }
    let after = db.execute(&sql).unwrap().rows();
    assert_eq!(baseline.rows, after.rows, "scaling must not change results");
    let serving = db.metrics().counter_value("vw.serving_calls");
    let brute = db.metrics().counter_value("worker.brute_force");
    println!(
        "post-scaling query served identically (serving RPCs: {serving}, brute-force fallbacks: {brute})"
    );

    // Fault tolerance: kill a worker mid-flight; queries retry on the
    // shrunken topology (§II-E).
    let victim = vw.worker_ids()[0];
    vw.inject_failure(victim).unwrap();
    println!("\ninjected failure on {victim}");
    let recovered = db.execute(&sql).unwrap().rows();
    assert_eq!(baseline.rows, recovered.rows);
    println!(
        "query retried and succeeded; VW now has {} workers (retries: {})",
        vw.worker_count(),
        db.metrics().counter_value("vw.query_retries")
    );

    // Scale back down: consistent hashing moves only the evicted worker's
    // segments.
    let before = vw.assign(&table.segments());
    let leaving = vw.worker_ids()[0];
    vw.scale_down(leaving, &table.segments()).unwrap();
    let after_down = vw.assign(&table.segments());
    let mut moved = 0;
    let mut stayed = 0;
    for (wid, segs) in &before {
        for meta in segs {
            let now = after_down
                .iter()
                .find(|(_, g)| g.iter().any(|m| m.id == meta.id))
                .map(|(w, _)| *w);
            if *wid == leaving || now != Some(*wid) {
                moved += 1;
            } else {
                stayed += 1;
            }
        }
    }
    println!(
        "\nscale-down: {moved} segments moved, {stayed} stayed put (minimal movement property)"
    );
    let final_rows = db.execute(&sql).unwrap().rows();
    assert_eq!(baseline.rows, final_rows.rows);
    println!("results stable across the whole scaling lifecycle");
}
