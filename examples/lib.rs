//! Shared crate for BlendHouse-rs examples and cross-crate integration
//! tests. The runnable binaries live next to this file; the integration
//! tests under `/tests` are registered as test targets of this package.
