//! CI smoke test for the observability layer: run a traced query end to end
//! and exit nonzero if the tracer recorded nothing or the `EXPLAIN ANALYZE`
//! profile came back without a stage tree.
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin trace_smoke`

use bh_storage::table::TableStoreConfig;
use blendhouse::{Database, DatabaseConfig, QueryOutput, Value};

fn main() {
    // Small segments so the query fans out across several of them and the
    // profile exercises pruning, cache, and remote-read spans.
    let db = Database::new(DatabaseConfig {
        table: TableStoreConfig { segment_max_rows: 64, ..Default::default() },
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE docs (
           id UInt64, label String, emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM=4')
         ) ORDER BY id",
    )
    .expect("create table");
    let rows: Vec<String> = (0..300)
        .map(|i| {
            let c = (i % 3) as f32 * 5.0 + i as f32 * 1e-3;
            format!("({i}, 'l{}', [{c}, {:.3}, {:.3}, {:.3}])", i % 2, c + 0.1, c + 0.2, c - 0.1)
        })
        .collect();
    db.execute(&format!("INSERT INTO docs VALUES {}", rows.join(", "))).expect("insert");

    // 1. A directly traced query must record spans.
    let tracer = db.metrics().tracer().clone();
    tracer.set_enabled(true);
    db.execute(
        "SELECT id FROM docs WHERE label = 'l0' \
         ORDER BY L2Distance(emb, [0.1, 0.2, 0.3, 0.0]) LIMIT 5",
    )
    .expect("traced query");
    tracer.set_enabled(false);
    let spans = tracer.drain();
    assert!(!spans.is_empty(), "traced query produced no spans");
    let have = |name: &str| spans.iter().any(|s| s.name == name);
    for required in ["bind", "plan", "exec", "exec.vector"] {
        assert!(have(required), "missing span {required:?}; got {spans:?}");
    }
    println!("traced query recorded {} spans", spans.len());

    // 2. EXPLAIN ANALYZE must render a non-empty stage tree.
    let out = db
        .execute(
            "EXPLAIN ANALYZE SELECT id FROM docs \
             ORDER BY L2Distance(emb, [5.0, 5.1, 5.2, 4.9]) LIMIT 3",
        )
        .expect("explain analyze");
    let QueryOutput::Rows(profile) = out else { panic!("EXPLAIN ANALYZE returned no rows") };
    let text: Vec<String> = profile
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            other => panic!("profile cell is not a string: {other:?}"),
        })
        .collect();
    assert!(
        text.first().is_some_and(|l| l.starts_with("query  ")),
        "profile does not start with the root query span: {text:?}"
    );
    assert!(text.len() > 3, "profile has no stage tree: {text:?}");
    println!("--- EXPLAIN ANALYZE ---");
    for line in &text {
        println!("{line}");
    }

    // 3. Metrics exposition carries the query's counters.
    let metrics = db.metrics_text();
    assert!(metrics.contains("remote_get_bytes"), "metrics text missing remote_get_bytes");
    println!("trace smoke OK");
}
