//! RAG retrieval layer: the motivating application of the paper's
//! introduction — retrieval-augmented generation over a document corpus with
//! freshness filtering and live updates.
//!
//! Demonstrates: metadata-filtered retrieval, incremental ingest of new
//! documents being searchable immediately, and document re-embedding via
//! UPDATE without index rebuilds (Fig. 6 semantics).
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin rag_pipeline`

use blendhouse::{Database, Value};

const DIM: usize = 16;

/// A toy deterministic "embedding model": hash words into a vector.
fn embed(text: &str) -> Vec<f32> {
    let mut v = vec![0.0f32; DIM];
    for word in text.split_whitespace() {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in word.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        for (d, slot) in v.iter_mut().enumerate() {
            let bit = (h >> (d % 64)) & 1;
            *slot += if bit == 1 { 1.0 } else { -1.0 };
        }
    }
    bh_vector::distance::normalize(&mut v);
    v
}

fn vec_sql(v: &[f32]) -> String {
    v.iter().map(|x| format!("{x:.5}")).collect::<Vec<_>>().join(", ")
}

fn main() {
    let db = Database::in_memory();
    db.execute(&format!(
        "CREATE TABLE docs (
           id UInt64, source String, updated DateTime, body String,
           embedding Array(Float32),
           INDEX ann embedding TYPE HNSW('DIM={DIM}', 'METRIC=COSINE')
         ) ORDER BY id PARTITION BY source",
    ))
    .expect("ddl");

    let corpus: &[(&str, &str)] = &[
        ("wiki", "the eiffel tower is a landmark in paris france"),
        ("wiki", "rust is a systems programming language focused on safety"),
        ("wiki", "the great wall of china is visible across many provinces"),
        ("news", "new vector database releases improve retrieval quality"),
        ("news", "paris hosts a technology conference about databases"),
        ("docs", "the query optimizer chooses between three physical plans"),
        ("docs", "consistent hashing assigns segments to stateless workers"),
        ("docs", "delete bitmaps enable realtime updates on immutable segments"),
    ];
    for (i, (source, body)) in corpus.iter().enumerate() {
        let e = embed(body);
        db.execute(&format!(
            "INSERT INTO docs VALUES ({i}, '{source}', {}, '{body}', [{}])",
            1_700_000_000 + i as u64,
            vec_sql(&e)
        ))
        .expect("insert");
    }
    println!("indexed {} documents", corpus.len());

    // Retrieval for a user question, restricted to trusted sources.
    let question = "which language is about systems programming safety";
    let qe = embed(question);
    let rows = db
        .execute(&format!(
            "SELECT id, source, body, dist FROM docs
             WHERE source IN ('wiki', 'docs')
             ORDER BY CosineDistance(embedding, [{}]) AS dist
             LIMIT 3",
            vec_sql(&qe)
        ))
        .expect("retrieve")
        .rows();
    println!("\nretrieval for: {question:?}");
    print!("{}", rows.to_table_string());
    let top = rows.rows[0][2].clone();
    assert!(matches!(&top, Value::Str(s) if s.contains("rust")), "expected the rust doc first");

    // Live ingest: a new document is searchable immediately (per-segment
    // index built at insert time, no collection-wide rebuild).
    let fresh = "blendhouse integrates vector search into a relational engine";
    db.execute(&format!(
        "INSERT INTO docs VALUES (100, 'news', 1800000000, '{fresh}', [{}])",
        vec_sql(&embed(fresh))
    ))
    .expect("insert fresh");
    let rows = db
        .execute(&format!(
            "SELECT id, dist FROM docs
             WHERE updated >= '2027-01-01 00:00:00'
             ORDER BY CosineDistance(embedding, [{}]) AS dist LIMIT 1",
            vec_sql(&embed("vector search relational engine"))
        ))
        .expect("fresh query")
        .rows();
    assert_eq!(rows.rows[0][0], Value::UInt64(100));
    println!("freshly ingested document retrieved under a freshness filter");

    // Re-embedding a document = UPDATE; the old version is masked by the
    // delete bitmap, the new one lives in a new segment.
    let revised = "rust is a memory safe language for reliable systems software";
    db.execute(&format!(
        "UPDATE docs SET body = '{revised}', embedding = [{}] WHERE id = 1",
        vec_sql(&embed(revised))
    ))
    .expect("update");
    let rows = db
        .execute(&format!(
            "SELECT body FROM docs ORDER BY CosineDistance(embedding, [{}]) LIMIT 1",
            vec_sql(&embed("memory safe reliable systems software"))
        ))
        .expect("post-update retrieve")
        .rows();
    assert!(matches!(&rows.rows[0][0], Value::Str(s) if s.contains("memory safe")));
    println!("re-embedded document retrieved with its new content");

    let report = db.compact("docs").expect("compact");
    println!(
        "compaction merged {} segments and dropped {} superseded versions",
        report.merged_segments, report.rows_dropped
    );
}
