//! CI smoke test for queryable introspection: run a workload with slow-query
//! capture armed, then check that every `system.*` table answers real SELECTs
//! and that `SYSTEM TRACE EXPORT` renders chrome://tracing JSON.
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin system_tables`

use bh_common::querylog::SlowQueryPolicy;
use bh_storage::table::TableStoreConfig;
use blendhouse::{Database, DatabaseConfig, QueryOutput, Value};

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    match db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}")) {
        QueryOutput::Rows(rs) => rs.rows,
        other => panic!("{sql}: expected rows, got {other:?}"),
    }
}

fn cell_u64(v: &Value) -> u64 {
    match v {
        Value::UInt64(n) => *n,
        other => panic!("expected UInt64, got {other:?}"),
    }
}

fn main() {
    // threshold_nanos: 0 retains every query's span tree, so the smoke run is
    // deterministic regardless of how fast the machine is.
    let db = Database::new(DatabaseConfig {
        table: TableStoreConfig { segment_max_rows: 64, ..Default::default() },
        slow_query: Some(SlowQueryPolicy { threshold_nanos: 0, capture_errors: true }),
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE docs (
           id UInt64, label String, emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM=4')
         ) ORDER BY id",
    )
    .expect("create table");
    let values: Vec<String> = (0..300)
        .map(|i| {
            let c = (i % 3) as f32 * 5.0 + i as f32 * 1e-3;
            format!("({i}, 'l{}', [{c}, {:.3}, {:.3}, {:.3}])", i % 2, c + 0.1, c + 0.2, c - 0.1)
        })
        .collect();
    db.execute(&format!("INSERT INTO docs VALUES {}", values.join(", "))).expect("insert");
    db.execute(
        "SELECT id FROM docs WHERE label = 'l0' \
         ORDER BY L2Distance(emb, [0.1, 0.2, 0.3, 0.0]) LIMIT 5",
    )
    .expect("vector query");
    let err = db.execute("SELECT id FROM missing_table").expect_err("query must fail");
    println!("expected failure captured: {err}");

    // 1. The acceptance query: slowest five statements with stage latencies.
    let log = rows(
        &db,
        "SELECT query_id, kind, sql, duration_ns, exec_ns, result_rows, error_code \
         FROM system.query_log ORDER BY duration_ns DESC LIMIT 5",
    );
    assert!(log.len() >= 4, "query log has only {} records", log.len());
    assert!(
        log.windows(2).all(|w| cell_u64(&w[0][3]) >= cell_u64(&w[1][3])),
        "query log not sorted by duration: {log:?}"
    );
    let errored = rows(
        &db,
        "SELECT sql, error_code FROM system.query_log WHERE error_code = 'NOT_FOUND'",
    );
    assert_eq!(errored.len(), 1, "expected exactly one NOT_FOUND row: {errored:?}");
    println!("system.query_log: {} records, 1 error row", log.len());

    // 2. The slow-query policy retained span trees queryable via system.spans.
    let traced = rows(
        &db,
        "SELECT query_id FROM system.query_log \
         WHERE traced = 1 AND kind = 'select' AND error_code = '' \
         ORDER BY duration_ns DESC LIMIT 1",
    );
    assert!(!traced.is_empty(), "no select statement was trace-captured");
    let qid = cell_u64(&traced[0][0]);
    let spans =
        rows(&db, &format!("SELECT span_id, name, duration_ns FROM system.spans WHERE query_id = {qid}"));
    assert!(!spans.is_empty(), "query {qid} captured no spans");
    println!("system.spans: query {qid} retained {} spans", spans.len());

    // 3. The chrome://tracing export is non-trivial and names the query.
    let export = match &rows(&db, "SYSTEM TRACE EXPORT")[0][0] {
        Value::Str(s) => s.clone(),
        other => panic!("export cell is not a string: {other:?}"),
    };
    assert!(export.contains("\"traceEvents\""), "export missing traceEvents");
    assert!(export.contains("\"ph\":\"X\""), "export has no complete events");
    assert!(export.contains(&format!("\"pid\":{qid},")), "export missing query {qid}");
    println!("SYSTEM TRACE EXPORT: {} bytes", export.len());

    // 4. Live telemetry tables: metrics (with SLO histograms), caches,
    //    segments, lock classes.
    let slo = rows(
        &db,
        "SELECT name, value FROM system.metrics \
         WHERE name = 'query.slo{kind=\"select\"}.count'",
    );
    assert_eq!(slo.len(), 1, "missing select-kind SLO histogram: {slo:?}");
    let agg = rows(&db, "SELECT count(*) AS n FROM system.metrics WHERE kind = 'counter'");
    assert!(cell_u64(&agg[0][0]) > 10, "too few counters: {agg:?}");
    let caches = rows(&db, "SELECT cache, used_bytes, hits FROM system.caches");
    assert!(!caches.is_empty(), "system.caches is empty");
    let segments = rows(&db, "SELECT segment_id, rows, resident_workers FROM system.segments WHERE rows > 0");
    assert!(segments.len() > 2, "expected several segments: {segments:?}");
    let locks = rows(&db, "SELECT name, rank FROM system.lock_classes ORDER BY rank");
    assert!(locks.len() > 10, "lock class table too small: {locks:?}");
    println!(
        "system.caches/segments/lock_classes: {}/{}/{} rows ok",
        caches.len(),
        segments.len(),
        locks.len()
    );
    println!("system tables smoke OK");
}
