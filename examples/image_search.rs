//! Image-search service: the paper's production scenario (§V-C1).
//!
//! A catalog of images with multiple scalar attributes and an embedding per
//! image; queries find the most similar images among those matching
//! conjunctive attribute filters, comparing the three physical strategies
//! the cost-based optimizer chooses between.
//!
//! Run with: `cargo run --release -p blendhouse-examples --bin image_search`

use bh_bench::datasets::DatasetSpec;
use bh_bench::setup::second_attr;
use blendhouse::{Database, QueryOptions, Strategy, Value};

fn main() {
    let data = DatasetSpec::laion_sim().generate().with_captions();
    let db = Database::in_memory();
    db.execute(&format!(
        "CREATE TABLE images (
           id UInt64, views Int64, likes Int64, caption String,
           quality Float64, emb Array(Float32),
           INDEX ann emb TYPE HNSW('DIM={}', 'M=16')
         ) ORDER BY id CLUSTER BY emb INTO 8 BUCKETS",
        data.dim()
    ))
    .expect("ddl");

    // Bulk ingest through the typed API (faster than SQL text for bulk).
    let table = db.table("images").unwrap();
    let likes = second_attr(&data);
    let rows: Vec<Vec<Value>> = (0..data.n())
        .map(|i| {
            vec![
                Value::UInt64(i as u64),
                Value::Int64(data.rand_int[i]),
                Value::Int64(likes[i]),
                Value::Str(data.captions[i].clone()),
                Value::Float64(data.similarity[i]),
                Value::Vector(data.vector(i).to_vec()),
            ]
        })
        .collect();
    table.insert_rows(rows).expect("ingest");
    println!(
        "loaded {} images into {} segments",
        table.visible_rows(),
        table.segment_count()
    );

    let query_vec: Vec<String> = data.queries(1, 42)[0].iter().map(|v| v.to_string()).collect();
    let sql = format!(
        "SELECT id, caption, dist FROM images
         WHERE views BETWEEN 100000 AND 900000
           AND quality >= 0.3
           AND caption REGEXP '^[a-m]'
         ORDER BY L2Distance(emb, [{}]) AS dist
         LIMIT 5",
        query_vec.join(", ")
    );

    // Let the CBO pick, then force each strategy to compare.
    println!("\n--- CBO-selected plan ---");
    let rows = db.execute(&sql).expect("query").rows();
    print!("{}", rows.to_table_string());
    let cbo_ids = rows.column_values("id").unwrap();

    for strategy in [
        Strategy::BruteForce,
        Strategy::PreFilter,
        Strategy::PostFilter,
        Strategy::FilteredTraversal,
    ] {
        let opts = QueryOptions { forced_strategy: Some(strategy), ..db.default_options() };
        let rows = db.execute_with(&sql, &opts).expect("query").rows();
        println!(
            "{:<24} -> {} rows, ids match CBO plan: {}",
            strategy.name(),
            rows.len(),
            rows.column_values("id").unwrap() == cbo_ids
        );
    }

    // Every returned caption satisfies the regex — hybrid semantics hold.
    for row in &rows.rows {
        if let Value::Str(c) = &row[1] {
            assert!(('a'..='m').contains(&c.chars().next().unwrap()));
        }
    }
    println!("\nall results satisfy the caption regex and attribute filters");
}
